// This file is the multi-worker serving layer: the Go analogue of the
// paper's evaluation stack, which drives oss-performance load at a pool
// of HHVM request workers (§5.1). Each Worker owns a private vm.Runtime
// — its own accelerators, meter, and trace — so workers share no mutable
// state and run freely on separate goroutines; the fleet-level Result is
// produced by merging the per-worker meters and traces after the
// goroutines join.

package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core/hashtable"
	"repro/internal/obs"
	"repro/internal/php"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// maxWorkerLatencies bounds each worker's latency slice; beyond it the
// oldest half is discarded, same policy as the obs.Collector reservoir,
// so a long-running serving frontend (which never resets its workers)
// does not grow memory without bound.
const maxWorkerLatencies = 1 << 14

// Worker is one serving slot: a private runtime plus the app instance
// bound to it. A worker must be owned by exactly one goroutine at a time;
// ownership is transferred through Pool.Acquire/Release.
type Worker struct {
	id  int
	rt  *vm.Runtime
	app App

	served    int
	respBytes int64
	latencies []time.Duration
}

// ID returns the worker's index in the pool.
func (w *Worker) ID() int { return w.id }

// Runtime exposes the worker's private runtime. Callers must hold
// ownership of the worker (via Pool.Acquire or inside Pool.Run).
func (w *Worker) Runtime() *vm.Runtime { return w.rt }

// Served returns how many requests this worker has served since its last
// reset.
func (w *Worker) Served() int { return w.served }

// ServeOne renders one request on the worker's runtime, recording its
// wall-clock latency and response size.
func (w *Worker) ServeOne() []byte {
	page, _ := w.serveSpan(false)
	return page
}

// ServeOneProfiled renders one request like ServeOne and additionally
// returns a sampled obs.Span attributing the request's simulated cycles
// to the paper's activity categories, computed by diffing the worker's
// meter around the render. It costs two CategoryCyclesVec snapshots on
// top of ServeOne, which is why callers sample rather than profile every
// request.
func (w *Worker) ServeOneProfiled() ([]byte, obs.Span) {
	return w.serveSpan(true)
}

// ServeOneCtx is ServeOne with the request deadline propagated from
// admission: if ctx is already done when the worker picks the request
// up, the render is skipped and the context's error returned, so a
// request that spent its whole deadline queueing is not rendered for a
// client that stopped waiting. A render that has started always runs to
// completion — like a PHP-FPM worker, the execution itself is not
// preemptible.
func (w *Worker) ServeOneCtx(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	page, _ := w.serveSpan(false)
	return page, nil
}

// ServeOneProfiledCtx is ServeOneProfiled with the same
// deadline-at-pickup check as ServeOneCtx.
func (w *Worker) ServeOneProfiledCtx(ctx context.Context) ([]byte, obs.Span, error) {
	return w.ServeSpanCtx(ctx, true)
}

// ServeSpanCtx is the deadline-aware serve underlying both ctx
// variants: it checks the request's deadline at worker pickup, then
// renders, profiling the request when profile is true. The returned
// span always carries worker identity and render wall time, which is
// what collector-driven serving paths (serve.RunLoad) observe.
func (w *Worker) ServeSpanCtx(ctx context.Context, profile bool) ([]byte, obs.Span, error) {
	if err := ctx.Err(); err != nil {
		return nil, obs.Span{}, err
	}
	page, sp := w.serveSpan(profile)
	return page, sp, nil
}

func (w *Worker) serveSpan(profile bool) ([]byte, obs.Span) {
	return w.serve(profile, func() []byte { return w.app.ServeRequest(w.rt) })
}

// serve runs one render, measuring wall latency and (when profile is
// true) building the span tree. The wall clock and the tree share one
// starting instant, so the tree root's Dur can never exceed the span's
// Wall — and for profiled requests the two are set equal exactly (the
// invariant the /tracez exports rely on).
func (w *Worker) serve(profile bool, render func() []byte) ([]byte, obs.Span) {
	start := time.Now()
	var tb *obs.TreeBuilder
	if profile {
		// The builder's root "request" span doubles as the meter diff:
		// its category delta is exactly what the before/after snapshot
		// used to compute, so the tree costs no extra vector reads at
		// the request level.
		tb = obs.NewTreeBuilderAt(w.rt.Meter(), 0, start)
		w.rt.SetSpans(tb)
		w.rt.BeginSpan("render")
	}
	page := render()
	wall := time.Since(start)
	sp := obs.Span{Worker: w.id, Wall: wall}
	if profile {
		w.rt.SetSpans(nil)
		tree := tb.Finish(w.id)
		sp.Sampled = true
		sp.Tree = tree
		sp.Categories = tree.Root.Categories
		sp.Cycles = tree.Root.Cycles
		// Finish read the clock after the wall measurement; pin the two
		// to the same value so root Dur == span Wall exactly.
		tree.Root.Dur = wall
	}
	if len(w.latencies) >= maxWorkerLatencies {
		w.latencies = append(w.latencies[:0], w.latencies[len(w.latencies)/2:]...)
	}
	w.latencies = append(w.latencies, wall)
	w.served++
	w.respBytes += int64(len(page))
	return page, sp
}

// ServePageSpanCtx is ServeSpanCtx for a specific page index: the
// render goes through the app's PageApp identity instead of its internal
// request sequence, which is how cache fills render the exact page the
// cache key names. It errors when the worker's app lacks page identity.
func (w *Worker) ServePageSpanCtx(ctx context.Context, page int, profile bool) ([]byte, obs.Span, error) {
	pa, ok := w.app.(PageApp)
	if !ok {
		return nil, obs.Span{}, fmt.Errorf("workload: app %s does not support page identity", w.app.Name())
	}
	if err := ctx.Err(); err != nil {
		return nil, obs.Span{}, err
	}
	body, sp := w.serve(profile, func() []byte { return pa.ServePage(w.rt, page) })
	return body, sp, nil
}

// reset discards accumulated measurements but keeps runtime state warm.
func (w *Worker) reset() {
	w.rt.Meter().Reset()
	if w.rt.Trace() != nil {
		w.rt.Trace().Reset()
	}
	w.served = 0
	w.respBytes = 0
	w.latencies = w.latencies[:0]
}

// Pool owns n independent workers and hands them out one goroutine at a
// time. Worker i runs app appName seeded with seed+i, so a pool run is
// deterministic in its simulated metrics (cycles, uops, energy) even
// though wall-clock latencies vary.
type Pool struct {
	workers []*Worker
	free    chan *Worker
	col     *obs.Collector // optional observability sink for Run

	// snapMu serializes whole-pool drains (Run, Snapshot, MergedMeter,
	// MergedTrace). Without it, two overlapping drains — e.g. a /metrics
	// scrape racing a /stats scrape — can each pull a subset of workers
	// off the free list and block forever holding them, wedging the
	// server. At most one goroutine may drain the free list at a time.
	snapMu sync.Mutex
}

// NewPool builds n workers, each with a fresh runtime from cfg and its
// own app instance. Worker i is seeded with seed+i, so workers render
// distinct content — the traffic-variety default for throughput runs.
func NewPool(n int, cfg vm.Config, appName string, seed int64) (*Pool, error) {
	return newPool(n, cfg, appName, func(i int) int64 { return seed + int64(i) })
}

// NewPoolSharedSeed builds a pool whose workers all use the same seed,
// so every worker renders identical bytes for a given page index. That
// is the configuration a response cache requires: a cached page must
// match what any other worker would have rendered for the same key.
func NewPoolSharedSeed(n int, cfg vm.Config, appName string, seed int64) (*Pool, error) {
	return newPool(n, cfg, appName, func(int) int64 { return seed })
}

func newPool(n int, cfg vm.Config, appName string, seedFor func(i int) int64) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: pool needs at least 1 worker, got %d", n)
	}
	p := &Pool{free: make(chan *Worker, n)}
	for i := 0; i < n; i++ {
		app, err := ByName(appName, seedFor(i))
		if err != nil {
			return nil, err
		}
		w := &Worker{id: i, rt: vm.New(cfg), app: app}
		p.workers = append(p.workers, w)
		p.free <- w
	}
	return p, nil
}

// SupportsPages reports whether the pool's workload has page identity
// (implements PageApp) — a precondition for the cached serving path.
func (p *Pool) SupportsPages() bool {
	_, ok := p.workers[0].app.(PageApp)
	return ok
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Idle returns how many workers are currently on the free list. Size() -
// Idle() is the busy-worker gauge the /metrics endpoint exports; the
// value is a racy instantaneous reading, which is all a utilization
// gauge needs.
func (p *Pool) Idle() int { return len(p.free) }

// SetCollector attaches an observability collector: measured requests
// served by Run flow through it (every request feeds its counters and
// latency histogram; sampled ones carry category-attribution spans).
// Pass nil to detach. Serving frontends that call Acquire/ServeOne
// directly (cmd/phpserve) drive their collector themselves.
func (p *Pool) SetCollector(c *obs.Collector) { p.col = c }

// Acquire blocks until a worker is free and transfers its ownership to
// the caller. Pair with Release.
func (p *Pool) Acquire() *Worker { return <-p.free }

// AcquireCtx blocks until a worker is free or ctx is done, whichever
// comes first. A free worker wins over an already-expired context, so a
// request never times out when capacity was available at the moment it
// asked. On success ownership transfers to the caller (pair with
// Release); otherwise the context's error is returned and no worker is
// held.
func (p *Pool) AcquireCtx(ctx context.Context) (*Worker, error) {
	select {
	case w := <-p.free:
		return w, nil
	default:
	}
	select {
	case w := <-p.free:
		return w, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a worker to the free list.
func (p *Pool) Release(w *Worker) { p.free <- w }

// acquireAll takes exclusive ownership of every worker, blocking until
// in-flight requests drain. It holds snapMu until the matching
// releaseAll so concurrent drains queue up instead of deadlocking on
// partial free-list ownership.
func (p *Pool) acquireAll() {
	p.snapMu.Lock()
	for range p.workers {
		<-p.free
	}
}

func (p *Pool) releaseAll() {
	for _, w := range p.workers {
		p.free <- w
	}
	p.snapMu.Unlock()
}

// MergedMeter returns a fresh meter aggregating every worker's cost
// statistics. It blocks until all workers are idle.
func (p *Pool) MergedMeter() *sim.Meter {
	p.acquireAll()
	defer p.releaseAll()
	return p.mergedMeterOwned()
}

// mergedMeterOwned requires the caller to hold every worker.
func (p *Pool) mergedMeterOwned() *sim.Meter {
	mt := sim.NewMeter(p.workers[0].rt.Meter().Model)
	for _, w := range p.workers {
		mt.Merge(w.rt.Meter())
	}
	return mt
}

// MergedTrace returns a fresh unbounded recorder holding every worker's
// retained events, grouped by worker. It returns nil when tracing is
// disabled and blocks until all workers are idle.
func (p *Pool) MergedTrace() *trace.Recorder {
	p.acquireAll()
	defer p.releaseAll()
	return p.mergedTraceOwned()
}

func (p *Pool) mergedTraceOwned() *trace.Recorder {
	if p.workers[0].rt.Trace() == nil {
		return nil
	}
	rec := trace.NewRecorder(0)
	for _, w := range p.workers {
		rec.Merge(w.rt.Trace())
	}
	return rec
}

// Run drives the load generator across the pool: every worker serves the
// full warmup phase (bringing its private accelerator state and metadata
// caches to steady state, costs discarded), then lg.Requests measured
// requests are statically partitioned across workers and served on one
// goroutine per worker, at most concurrency workers executing at once
// (<=0 means all). The static partition keeps the simulated metrics
// deterministic for a given pool regardless of scheduling.
func (p *Pool) Run(lg LoadGenerator, concurrency int) Result {
	return p.RunCtx(context.Background(), lg, concurrency)
}

// RunCtx is Run with cancellation: once ctx is done, workers stop
// issuing new requests (a request that has started always finishes),
// the phases join, and the partial Result covering whatever was served
// is returned. The pool is left in a consistent state, so a cancelled
// run can still be followed by more serving.
func (p *Pool) RunCtx(ctx context.Context, lg LoadGenerator, concurrency int) Result {
	p.acquireAll()
	defer p.releaseAll()

	n := len(p.workers)
	if concurrency <= 0 || concurrency > n {
		concurrency = n
	}
	counts := make([]int, n)
	for i := 0; i < lg.Requests; i++ {
		counts[i%n]++
	}

	sem := make(chan struct{}, concurrency)
	runPhase := func(f func(w *Worker, count int)) {
		var wg sync.WaitGroup
		for i, w := range p.workers {
			wg.Add(1)
			go func(w *Worker, count int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				f(w, count)
			}(w, counts[i])
		}
		wg.Wait()
	}

	runPhase(func(w *Worker, _ int) {
		for i := 0; i < lg.Warmup && ctx.Err() == nil; i++ {
			w.app.ServeRequest(w.rt)
			if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
				w.rt.ContextSwitch()
			}
		}
		w.reset()
	})

	start := time.Now()
	runPhase(func(w *Worker, count int) {
		for i := 0; i < count && ctx.Err() == nil; i++ {
			if p.col == nil {
				w.ServeOne()
			} else {
				page, sp := w.serveSpan(p.col.ShouldSample())
				p.col.Observe(sp, len(page))
			}
			if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
				w.rt.ContextSwitch()
			}
		}
	})
	return p.gatherResultOwned(time.Since(start))
}

// GatherResult drains the pool (waiting for in-flight requests) and
// aggregates the fleet-level Result accumulated since the workers were
// last reset — served counts, latencies, merged meter and trace. It is
// how serving paths that bypass Run (the serve.Scheduler) produce the
// same Result shape Run returns; wall is the measurement wall time the
// caller observed.
func (p *Pool) GatherResult(wall time.Duration) Result {
	p.acquireAll()
	defer p.releaseAll()
	return p.gatherResultOwned(wall)
}

// gatherResultOwned requires the caller to hold every worker.
func (p *Pool) gatherResultOwned(wall time.Duration) Result {
	res := Result{App: p.workers[0].app.Name(), Workers: len(p.workers), Wall: wall}
	var lats []time.Duration
	for _, w := range p.workers {
		res.Requests += w.served
		res.ResponseBytes += w.respBytes
		lats = append(lats, w.latencies...)
	}
	res.Latency = LatencyStatsFrom(lats)
	mt := p.mergedMeterOwned()
	res.Cycles = mt.TotalCycles()
	res.Uops = mt.TotalUops()
	res.EnergyPJ = mt.TotalEnergy()
	res.Categories = mt.CategoryCyclesVec()
	res.Keys = keyStatsFromTrace(p.mergedTraceOwned())
	return res
}

// ScriptTiered is implemented by apps that execute PHP source through
// the tiered interpreter (ScriptedApp): the pool can switch their
// execution tier and collect per-worker tier state.
type ScriptTiered interface {
	SetScriptTier(mode php.TierMode, policy php.TierPolicy) error
	TierSnapshotFor(rt *vm.Runtime) php.TierSnapshot
}

// ConfigureScriptTier switches every scripted worker app to the given
// execution tier, quiescing the pool first so no request observes the
// switch mid-render. It reports whether any worker's app supports
// tiering (false for Go-coded recipe apps, where the flag is a no-op).
func (p *Pool) ConfigureScriptTier(mode php.TierMode, policy php.TierPolicy) (bool, error) {
	p.acquireAll()
	defer p.releaseAll()
	any := false
	for _, w := range p.workers {
		st, ok := w.app.(ScriptTiered)
		if !ok {
			continue
		}
		if err := st.SetScriptTier(mode, policy); err != nil {
			return any, err
		}
		any = true
	}
	return any, nil
}

// TierSnapshot drains the pool and merges every scripted worker's tier
// state into one fleet-aggregate view — the data behind /tierz and the
// phpserve_tier_* metrics. The zero snapshot (Enabled false) comes back
// when no worker runs a tiered script.
func (p *Pool) TierSnapshot() php.TierSnapshot {
	p.acquireAll()
	defer p.releaseAll()
	var s php.TierSnapshot
	for _, w := range p.workers {
		if st, ok := w.app.(ScriptTiered); ok {
			s.Merge(st.TierSnapshotFor(w.rt))
		}
	}
	return s
}

// AccelStats aggregates the fleet's hardware-structure and runtime-cache
// counters — the observability signals that are per-worker state rather
// than meter charges.
type AccelStats struct {
	// HashTable sums every worker's hardware hash table counters
	// (zero-valued when the config has no hash table).
	HashTable hashtable.Stats
	// MapRebuilds counts stale-index rebuilds across all workers' maps
	// (§4.2 coherence events; the paper expects these to be rare).
	MapRebuilds int64
	// RegexLookups and RegexHits are the regexp manager pattern-cache
	// probes and hits across the fleet.
	RegexLookups int64
	RegexHits    int64
}

// accelStatsOwned requires the caller to hold every worker.
func (p *Pool) accelStatsOwned() AccelStats {
	var s AccelStats
	for _, w := range p.workers {
		cpu := w.rt.CPU()
		if cpu.HT != nil {
			s.HashTable.Add(cpu.HT.Stats())
		}
		s.MapRebuilds += cpu.MapRebuilds()
		lk, hit := w.rt.RegexCacheStats()
		s.RegexLookups += lk
		s.RegexHits += hit
	}
	return s
}

// PoolSnapshot is one consistent fleet-level view: merged meter, merged
// trace (nil when tracing is disabled), and accelerator statistics, all
// taken under the same quiescence barrier so a /metrics scrape reads one
// coherent moment.
type PoolSnapshot struct {
	Meter *sim.Meter
	Trace *trace.Recorder
	Accel AccelStats
}

// Snapshot drains the free list (waiting for in-flight requests) and
// returns the merged meter, merged trace, and accelerator statistics in
// one barrier, instead of the three separate drains MergedMeter +
// MergedTrace + per-worker reads would cost.
func (p *Pool) Snapshot() PoolSnapshot {
	p.acquireAll()
	defer p.releaseAll()
	return PoolSnapshot{
		Meter: p.mergedMeterOwned(),
		Trace: p.mergedTraceOwned(),
		Accel: p.accelStatsOwned(),
	}
}
