package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/hashmap"
	"repro/internal/sim"
	"repro/internal/vm"
)

// NewWordPress builds the WordPress-like workload: blog page rendering
// with heavy texturize regexp chains, tag generation, and comment
// formatting. Of the three apps it has the most string and regexp
// opportunity (Fig. 5, Fig. 15).
func NewWordPress(seed int64) App {
	return &appBase{
		p: params{
			name:         "wordpress",
			prefix:       "wp_",
			items:        6,
			attrsPerItem: 4,
			textLen:      900,
			comments:     5,
			optionReads:  60,
			symtabOps:    12,
			urlScans:     10,
			metaReads:    25,
			churn:        50,
			stringOps:    18,
			excerptLen:   115,
			chain:        fig11Chain(),
			otherFns:     150,
			otherUops:    158000,
			jitUops:      45000,
		},
		corpus: NewCorpus(seed, 64, 900),
		cat:    newCatalog("wp_", 150),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// NewDrupal builds the Drupal-like workload: node/menu rendering with
// heavier configuration and entity hash traffic but the least string and
// regexp time — the paper notes Drupal "does not spend much time either
// in regexp processing or in string functions" and benefits least.
func NewDrupal(seed int64) App {
	return &drupalApp{appBase{
		p: params{
			name:         "drupal",
			prefix:       "drupal_",
			items:        4,
			attrsPerItem: 3,
			textLen:      350,
			comments:     2,
			optionReads:  90,
			symtabOps:    16,
			urlScans:     4,
			metaReads:    40,
			churn:        60,
			stringOps:    4,
			excerptLen:   80,
			chain:        fig11Chain()[:2],
			otherFns:     170,
			otherUops:    197000,
			jitUops:      46000,
		},
		corpus: NewCorpus(seed, 64, 350),
		cat:    newCatalog("drupal_", 170),
		rng:    rand.New(rand.NewSource(seed)),
	}}
}

// drupalApp adds Drupal's entity/menu hash map traffic on top of the
// shared flow.
type drupalApp struct {
	appBase
}

func (d *drupalApp) ServeRequest(rt *vm.Runtime) []byte {
	d.reqSeq++
	return d.renderDrupalPage(rt, d.reqSeq)
}

// ServePage renders the Drupal page with the given index (see PageApp).
func (d *drupalApp) ServePage(rt *vm.Runtime, page int) []byte {
	return d.renderDrupalPage(rt, page)
}

func (d *drupalApp) renderDrupalPage(rt *vm.Runtime, page int) []byte {
	out := d.renderPage(rt, page)
	// Entity field lookups: short-lived maps with dynamic keys.
	fn := "drupal_entity_field_get"
	ent := rt.NewArray(fn)
	for i := 0; i < 30; i++ {
		k := hashmap.StrKey(fmt.Sprintf("field_%s_%d", pick(templateVars, i), i%9))
		if i%5 == 0 {
			rt.ASet(fn, ent, k, boxInt(i), true)
		} else {
			rt.AGet(pick(d.cat.hash, i), ent, k, true)
		}
	}
	rt.FreeArray(fn, ent)
	return out
}

// NewMediaWiki builds the MediaWiki-like workload: wikitext parsing with
// extra regexp scanning over long article text.
func NewMediaWiki(seed int64) App {
	return &mediaWikiApp{appBase{
		p: params{
			name:         "mediawiki",
			prefix:       "wf",
			items:        3,
			attrsPerItem: 3,
			textLen:      1600,
			comments:     2,
			optionReads:  40,
			symtabOps:    10,
			urlScans:     6,
			metaReads:    50,
			churn:        90,
			stringOps:    20,
			excerptLen:   170,
			chain:        fig11Chain()[:3],
			otherFns:     140,
			otherUops:    170000,
			jitUops:      42000,
		},
		corpus: NewCorpus(seed, 48, 1600),
		cat:    newCatalog("wf", 140),
		rng:    rand.New(rand.NewSource(seed)),
	}}
}

// mediaWikiApp adds wikitext link/template scanning.
type mediaWikiApp struct {
	appBase
}

func (m *mediaWikiApp) ServeRequest(rt *vm.Runtime) []byte {
	m.reqSeq++
	return m.renderWikiPage(rt, m.reqSeq)
}

// ServePage renders the MediaWiki page with the given index (see PageApp).
func (m *mediaWikiApp) ServePage(rt *vm.Runtime, page int) []byte {
	return m.renderWikiPage(rt, page)
}

func (m *mediaWikiApp) renderWikiPage(rt *vm.Runtime, page int) []byte {
	out := m.renderPage(rt, page)
	// Wikitext parsing: sieve over the article, then shadow scans for
	// link and entity patterns.
	fn := "wfParseWikitext"
	body := m.corpus.Post(page)
	if len(body) > 400 {
		body = body[:400]
	}
	sieve := rt.MustRegex(fn, `<`)
	link := rt.MustRegex(fn, `"[a-z ]*"`)
	amp := rt.MustRegex(fn, `&`)
	ms, hv := rt.CPU().RegexSieve(fn, sieve, body)
	_ = ms
	rt.CPU().RegexShadow(fn, link, body, hv)
	rt.CPU().RegexShadow(fn, amp, body, hv)
	return out
}

// --- SPECWeb-like workloads (Fig. 1 contrast) ---

// specWebApp models SPECWeb2005 banking/e-commerce: a hotspotted profile
// where a few functions dominate execution (~90% in very few functions).
type specWebApp struct {
	name   string
	corpus *Corpus
	seq    atomic.Int64
}

// NewSPECWebBanking builds the SPECWeb2005 banking workload.
func NewSPECWebBanking(seed int64) App {
	return &specWebApp{name: "specweb-banking", corpus: NewCorpus(seed, 16, 300)}
}

// NewSPECWebEcommerce builds the SPECWeb2005 e-commerce workload.
func NewSPECWebEcommerce(seed int64) App {
	return &specWebApp{name: "specweb-ecommerce", corpus: NewCorpus(seed+1, 16, 300)}
}

func (s *specWebApp) Name() string { return s.name }

func (s *specWebApp) ServeRequest(rt *vm.Runtime) []byte {
	return s.ServePage(rt, int(s.seq.Add(1)))
}

// ServePage renders the SPECWeb response for the given page index (see
// PageApp).
func (s *specWebApp) ServePage(rt *vm.Runtime, page int) []byte {
	rt.BeginRequest()
	ob := rt.NewOutputBuffer("specweb_render")
	mt := rt.Meter()

	// Micro-benchmark behaviour: almost everything in JIT-compiled code,
	// a couple of helper hotspots, a tiny tail.
	mt.AddUops("jit_compiled_code", sim.CatOther, 52000)
	mt.AddUops("jit_helper_arith", sim.CatOther, 11000)
	mt.AddUops("response_writer", sim.CatString, 6000)
	for i := 0; i < 24; i++ {
		mt.AddUops(fmt.Sprintf("sw_tail_%02d", i), sim.CatOther, 180)
	}

	// A little genuine runtime activity.
	arr := rt.NewArray("sw_session_get")
	rt.ASet("sw_session_get", arr, hashmap.StrKey("session"), boxInt(page), false)
	rt.AGet("sw_session_get", arr, hashmap.StrKey("session"), false)
	rt.FreeArray("sw_session_get", arr)
	ob.Write(rt.EscapeHTML("response_writer", s.corpus.Post(page)))
	return ob.Bytes()
}

// Apps returns the three studied PHP applications, freshly seeded.
func Apps(seed int64) []App {
	return []App{NewWordPress(seed), NewDrupal(seed), NewMediaWiki(seed)}
}

// ByName builds an app by workload name.
func ByName(name string, seed int64) (App, error) {
	switch name {
	case "wordpress":
		return NewWordPress(seed), nil
	case "drupal":
		return NewDrupal(seed), nil
	case "mediawiki":
		return NewMediaWiki(seed), nil
	case "specweb-banking":
		return NewSPECWebBanking(seed), nil
	case "specweb-ecommerce":
		return NewSPECWebEcommerce(seed), nil
	case "laravel":
		return NewLaravel(seed), nil
	case "symfony":
		return NewSymfony(seed), nil
	case "phpscript-blog":
		return NewBlogScript(), nil
	}
	return nil, fmt.Errorf("workload: unknown app %q", name)
}
