package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
)

func swRuntime() *vm.Runtime {
	return vm.New(vm.Config{Mitigations: sim.AllMitigations()})
}

func hwRuntime() *vm.Runtime {
	return vm.New(vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations()})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wordpress", "drupal", "mediawiki", "specweb-banking", "specweb-ecommerce", "laravel", "symfony", "phpscript-blog"} {
		app, err := ByName(name, 1)
		if err != nil || app.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, app, err)
		}
	}
	if _, err := ByName("rails", 1); err == nil {
		t.Errorf("unknown app should error")
	}
}

func TestAppsDeterministic(t *testing.T) {
	for _, name := range []string{"wordpress", "drupal", "mediawiki"} {
		render := func() []byte {
			rt := swRuntime()
			app, _ := ByName(name, 7)
			var out []byte
			for i := 0; i < 3; i++ {
				out = append(out, app.ServeRequest(rt)...)
			}
			return out
		}
		if !bytes.Equal(render(), render()) {
			t.Errorf("%s is not deterministic", name)
		}
	}
}

func TestResponsesNonTrivial(t *testing.T) {
	rt := swRuntime()
	for _, app := range Apps(3) {
		page := app.ServeRequest(rt)
		if len(page) < 1000 {
			t.Errorf("%s page too small: %d bytes", app.Name(), len(page))
		}
		if !bytes.Contains(page, []byte("<a ")) {
			t.Errorf("%s page missing generated tags", app.Name())
		}
	}
}

func TestAcceleratedRenderingEquivalentModuloPadding(t *testing.T) {
	for _, name := range []string{"wordpress", "drupal", "mediawiki"} {
		swApp, _ := ByName(name, 11)
		hwApp, _ := ByName(name, 11)
		swRt, hwRt := swRuntime(), hwRuntime()
		for i := 0; i < 3; i++ {
			sw := string(swApp.ServeRequest(swRt))
			hw := string(hwApp.ServeRequest(hwRt))
			if strings.ReplaceAll(sw, " ", "") != strings.ReplaceAll(hw, " ", "") {
				t.Fatalf("%s request %d: accelerated output differs beyond padding", name, i)
			}
		}
	}
}

func TestLoadGeneratorWarmupDiscarded(t *testing.T) {
	rt := swRuntime()
	app := NewWordPress(5)
	lg := LoadGenerator{Warmup: 5, Requests: 3}
	res := lg.Run(rt, app)
	if res.Requests != 3 || res.App != "wordpress" {
		t.Errorf("result header wrong: %+v", res)
	}
	if res.Cycles <= 0 || res.ResponseBytes <= 0 {
		t.Errorf("no measured work: %+v", res)
	}
	// Cycles must reflect only the measured phase: a run with more warmup
	// must not cost more.
	rt2 := swRuntime()
	app2 := NewWordPress(5)
	res2 := LoadGenerator{Warmup: 20, Requests: 3}.Run(rt2, app2)
	ratio := res2.Cycles / res.Cycles
	if ratio > 1.25 || ratio < 0.75 {
		t.Errorf("warmup leaked into measurement: %0.0f vs %0.0f", res2.Cycles, res.Cycles)
	}
}

func TestKeyStatsMatchPaperObservations(t *testing.T) {
	rt := hwRuntime()
	app := NewWordPress(9)
	res := LoadGenerator{Warmup: 20, Requests: 50, ContextSwitchEvery: 16}.Run(rt, app)
	ks := res.Keys
	if ks.TotalKeys == 0 {
		t.Fatalf("no key stats recorded")
	}
	// §4.2: about 95% of keys are at most 24 bytes.
	if ks.ShortKeyFrac() < 0.90 {
		t.Errorf("short-key fraction %0.3f, want >= 0.90", ks.ShortKeyFrac())
	}
	// §4.2: SETs are 15–25% of hash requests.
	if r := ks.SetRatio(); r < 0.12 || r > 0.30 {
		t.Errorf("SET ratio %0.3f, want in [0.12, 0.30]", r)
	}
	if ks.DynamicFrac() == 0 {
		t.Errorf("workload must exercise dynamic keys")
	}
}

func TestProfileShapeFlatForPHPHotForSPECWeb(t *testing.T) {
	runProfile := func(app App) profile.Profile {
		rt := swRuntime()
		LoadGenerator{Warmup: 10, Requests: 30}.Run(rt, app)
		return profile.FromMeter(rt.Meter())
	}
	wp := runProfile(NewWordPress(2))
	sw := runProfile(NewSPECWebBanking(2))

	// Fig. 1: PHP hottest ~10-12%, ~100 functions to reach 65%.
	if h := wp.HottestFrac(); h < 0.06 || h > 0.18 {
		t.Errorf("wordpress hottest function %0.3f, want ~0.10-0.12", h)
	}
	if n := wp.FuncsForFrac(0.65); n < 40 {
		t.Errorf("wordpress needs %d functions for 65%%, want a flat profile (>=40)", n)
	}
	// SPECWeb: few functions dominate (~90%).
	if n := sw.FuncsForFrac(0.90); n > 6 {
		t.Errorf("specweb needs %d functions for 90%%, want hotspots (<=6)", n)
	}
	if sw.HottestFrac() < 0.5 {
		t.Errorf("specweb hottest %0.3f, want dominant", sw.HottestFrac())
	}
}

func TestAcceleratorsImproveEveryApp(t *testing.T) {
	lg := LoadGenerator{Warmup: 20, Requests: 40, ContextSwitchEvery: 32}
	for _, name := range []string{"wordpress", "drupal", "mediawiki"} {
		swApp, _ := ByName(name, 4)
		hwApp, _ := ByName(name, 4)
		sw := lg.Run(swRuntime(), swApp)
		hw := lg.Run(hwRuntime(), hwApp)
		speedup := 1 - hw.Cycles/sw.Cycles
		if speedup <= 0.02 {
			t.Errorf("%s: accelerators gained only %0.3f", name, speedup)
		}
		if speedup > 0.5 {
			t.Errorf("%s: gain %0.3f implausibly high, calibration off", name, speedup)
		}
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a, b := NewCorpus(3, 8, 200), NewCorpus(3, 8, 200)
	for i := range a.Posts {
		if !bytes.Equal(a.Posts[i], b.Posts[i]) {
			t.Fatalf("corpus not deterministic")
		}
	}
	if len(a.Post(100)) == 0 || len(a.Title(100)) == 0 {
		t.Errorf("wrapped accessors broken")
	}
	if !bytes.HasPrefix(a.AuthorURL(0), []byte("https://localhost/?author=")) {
		t.Errorf("AuthorURL malformed: %s", a.AuthorURL(0))
	}
}

func TestCatalogShapes(t *testing.T) {
	c := newCatalog("wp_", 150)
	if len(c.other) != 150 {
		t.Errorf("other catalog size %d", len(c.other))
	}
	seen := map[string]bool{}
	for _, f := range c.other {
		if seen[f] {
			t.Fatalf("duplicate other function %q", f)
		}
		seen[f] = true
	}
}

func TestScriptedBlogApp(t *testing.T) {
	app := NewBlogScript()
	if app.Name() != "phpscript-blog" {
		t.Fatalf("name = %q", app.Name())
	}
	rt := swRuntime()
	page := app.ServeRequest(rt)
	if len(page) < 2000 {
		t.Fatalf("page too small: %d bytes", len(page))
	}
	for _, want := range []string{"<title>repro blog</title>", "<article id=\"post-1", "AUTHOR", "&#8221;", "<br />"} {
		if !bytes.Contains(page, []byte(want)) {
			t.Errorf("page missing %q", want)
		}
	}
	// Deterministic for the same request sequence.
	rt2 := swRuntime()
	app2 := NewBlogScript()
	if !bytes.Equal(page, app2.ServeRequest(rt2)) {
		t.Errorf("scripted app not deterministic")
	}
	// Second request differs (post ids advance).
	if bytes.Equal(page, app.ServeRequest(rt)) {
		t.Errorf("successive requests should render different posts")
	}
}

func TestScriptedAppAcceleratedEquivalence(t *testing.T) {
	swApp, hwApp := NewBlogScript(), NewBlogScript()
	swRt, hwRt := swRuntime(), hwRuntime()
	for i := 0; i < 3; i++ {
		sw := string(swApp.ServeRequest(swRt))
		hw := string(hwApp.ServeRequest(hwRt))
		if strings.ReplaceAll(sw, " ", "") != strings.ReplaceAll(hw, " ", "") {
			t.Fatalf("request %d: accelerated scripted output differs beyond padding", i)
		}
	}
}

func TestScriptedAppBenefitsFromAccelerators(t *testing.T) {
	lg := LoadGenerator{Warmup: 10, Requests: 25}
	sw := lg.Run(swRuntime(), NewBlogScript())
	hw := lg.Run(hwRuntime(), NewBlogScript())
	gain := 1 - hw.Cycles/sw.Cycles
	if gain <= 0.02 {
		t.Errorf("scripted workload gained only %0.3f from accelerators", gain)
	}
}

func TestNewScriptedRejectsBadSource(t *testing.T) {
	if _, err := NewScripted("bad", "<?php if ("); err == nil {
		t.Errorf("parse error should surface")
	}
}
