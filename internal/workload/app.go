package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/hashmap"
	"repro/internal/sim"
	"repro/internal/vm"
)

// App is a synthetic web application: a deterministic request generator
// over a vm.Runtime.
//
// Memory ownership: the returned body is backed by memory the app and
// its runtime recycle between requests (the reusable output buffer and
// the runtime's request arena). It is valid only until the next render
// on the same app/runtime pair — in pool terms, only while the serving
// worker is held. Callers that keep a body longer (caches, response
// writers that outlive the worker) must copy it first.
type App interface {
	// Name returns the workload name (wordpress, drupal, mediawiki, ...).
	Name() string
	// ServeRequest renders one page and returns the response body.
	ServeRequest(rt *vm.Runtime) []byte
}

// PageApp is an App whose requests have page identity: ServePage renders
// the page with the given index, and the same (corpus seed, page) pair
// always produces the same bytes regardless of request history. That
// stable identity is what makes a response cache key meaningful —
// ServeRequest is exactly ServePage over an internally advancing page
// sequence. Every built-in workload implements it. The App ownership
// contract applies: the returned bytes are recycled by the next render.
type PageApp interface {
	App
	// ServePage renders the page with the given index.
	ServePage(rt *vm.Runtime, page int) []byte
}

// params tunes one application's per-request activity mix. The values per
// app are calibrated so the post-mitigation execution-time breakdown
// matches Fig. 5 and the accelerated improvements match Figs. 14–15.
type params struct {
	name         string
	prefix       string
	items        int            // posts / nodes / sections per page
	attrsPerItem int            // attributes per rendered tag
	textLen      int            // body bytes per item
	comments     int            // comments rendered per page
	optionReads  int            // static-key configuration lookups
	symtabOps    int            // dynamic-key symbol table traffic (extract)
	urlScans     int            // author-URL regexp scans (content reuse)
	metaReads    int            // dynamic-key post-metadata reads per item
	churn        int            // short-lived zval allocations per item
	stringOps    int            // extra shortcode/needle scans per item
	excerptLen   int            // bytes of each body the texturize chain sees
	chain        []vm.ChainStep // texturize regexp chain (content sifting)
	otherFns     int            // distinct "other" leaf functions
	otherUops    float64        // per-request uops spread over other functions
	jitUops      float64        // per-request uops in the hottest JIT function
}

// boxedInts pre-boxes the integers the render path stores into arrays.
// The Go runtime interns boxed values below 256 only; page- and
// item-derived indexes go well past that, and boxing one per store shows
// up as the hottest allocation site in a steady-state render. Indexes
// beyond the table fall back to a plain (allocating) box.
var boxedInts = func() []any {
	vals := make([]any, 8192)
	for i := range vals {
		vals[i] = i
	}
	return vals
}()

// boxInt returns i as an interface value without allocating when i is
// within the pre-boxed table.
func boxInt(i int) any {
	if i >= 0 && i < len(boxedInts) {
		return boxedInts[i]
	}
	return i
}

// appBase implements the request flow shared by the three PHP apps.
type appBase struct {
	p      params
	corpus *Corpus
	cat    *catalog
	rng    *rand.Rand
	reqSeq int

	dbCache *vm.Array // persistent metadata cache (the "database")

	// ob is the reusable render output buffer (reset per request); obRT
	// remembers which runtime it charges so a fresh buffer is built if
	// the app is ever driven on a different runtime.
	ob   *vm.OutputBuffer
	obRT *vm.Runtime
	// renderFn and buildTagFn are the prefix-derived attribution names,
	// concatenated once instead of per request.
	renderFn   string
	buildTagFn string
	// chain is the texturize chain structure, refreshed (not rebuilt)
	// each render; the per-request regexp-manager lookups still run.
	chain *vm.Chain
}

// Name returns the workload name.
func (a *appBase) Name() string { return a.p.name }

// fig11Chain is the paper's WordPress code snippet: four consecutive
// regexps over the same content, each looking for a special character
// (apostrophe, double quote, newline, opening angle bracket).
func fig11Chain() []vm.ChainStep {
	return []vm.ChainStep{
		{Pattern: `(?<=\w)'`, Repl: "&#8217;"},
		{Pattern: `"`, Repl: "&#8221;"},
		{Pattern: "\n", Repl: "<br />"},
		{Pattern: `<`, Repl: "&lt;"},
	}
}

// ServeRequest renders the next page in the app's request sequence.
func (a *appBase) ServeRequest(rt *vm.Runtime) []byte {
	a.reqSeq++
	return a.renderPage(rt, a.reqSeq)
}

// ServePage renders the page with the given index, independent of the
// request sequence: the same (corpus seed, page) pair yields the same
// bytes on any worker with the same seed, which is the identity the
// response cache keys on.
func (a *appBase) ServePage(rt *vm.Runtime, page int) []byte {
	return a.renderPage(rt, page)
}

// renderPage is the shared request flow: every place the legacy path
// used the advancing reqSeq now derives from the explicit page index, so
// ServeRequest(n-th call) and ServePage(n) are bit-for-bit identical.
// The returned bytes alias the app's reusable output buffer and are
// valid only until the next render (see the App contract).
func (a *appBase) renderPage(rt *vm.Runtime, page int) []byte {
	rt.BeginRequest()
	if a.renderFn == "" {
		a.renderFn = a.p.prefix + "render_page"
		a.buildTagFn = a.p.prefix + "build_tag"
	}
	if a.ob == nil || a.obRT != rt {
		a.ob = rt.NewOutputBuffer(a.renderFn)
		a.obRT = rt
	} else {
		a.ob.Reset(a.renderFn)
	}
	ob := a.ob

	a.ensureDBCache(rt)
	rt.BeginSpan("load_config")
	a.loadConfiguration(rt, page)
	rt.EndSpan()
	rt.BeginSpan("route_request")
	a.routeRequest(rt, page)
	rt.EndSpan()

	rt.BeginSpan("render_items")
	for i := 0; i < a.p.items; i++ {
		a.renderItem(rt, ob, page*a.p.items+i)
	}
	rt.EndSpan()
	rt.BeginSpan("render_comments")
	for i := 0; i < a.p.comments; i++ {
		a.renderComment(rt, ob, page*a.p.comments+i)
	}
	rt.EndSpan()

	rt.BeginSpan("other_charges")
	a.chargeOther(rt)
	rt.EndSpan()
	return ob.Bytes()
}

// ensureDBCache lazily populates the persistent metadata cache the
// templates read from: a long-lived hash map whose GETs vastly outnumber
// its SETs, keeping the overall SET ratio in the paper's 15-25% band.
func (a *appBase) ensureDBCache(rt *vm.Runtime) {
	if a.dbCache != nil {
		return
	}
	fn := pick(a.cat.hash, 1)
	a.dbCache = rt.NewArray(fn)
	for i := 0; i < 48; i++ {
		k := hashmap.StrKey(metaKeys[i])
		rt.ASet(fn, a.dbCache, k, a.corpus.AuthorBytesVal(i), true)
	}
}

// loadConfiguration models option/config loading: mostly static literal
// keys (IC/HMI-specializable) with some dynamic ones.
func (a *appBase) loadConfiguration(rt *vm.Runtime, page int) {
	fn := pick(a.cat.hash, 0)
	opts := rt.NewArray(fn)
	for i := 0; i < a.p.optionReads; i++ {
		k := hashmap.StrKey(pick(optionKeys, i))
		if i%7 == 0 {
			rt.ASet(fn, opts, k, boxInt(i), false)
		} else {
			rt.AGet(pick(a.cat.hash, i), opts, k, false)
		}
	}
	// Dynamic-key symbol table traffic: the extract() pattern.
	sym := rt.NewArray("symtab_insert")
	src := rt.NewArray("extract_locals")
	for i := 0; i < a.p.symtabOps; i++ {
		k := hashmap.StrKey(pick(templateVars, page+i))
		rt.ASet(pick(a.cat.hash, i+3), src, k, a.corpus.AuthorVal(i), true)
	}
	rt.Extract("extract_locals", sym, src)
	for i := 0; i < a.p.symtabOps; i++ {
		k := hashmap.StrKey(pick(templateVars, page+i))
		rt.AGet(pick(a.cat.hash, i+5), sym, k, true)
	}
	rt.FreeArray(fn, opts)
	rt.FreeArray("symtab_insert", sym)
	rt.FreeArray("extract_locals", src)
}

// routeRequest models URL parsing: the same regexp over nearly identical
// URLs, the content reuse opportunity (Fig. 13).
func (a *appBase) routeRequest(rt *vm.Runtime, page int) {
	fn := pick(a.cat.regex, 0)
	re := rt.MustRegex(fn, `https://[a-z]+/\?author=[a-z0-9]+`)
	for i := 0; i < a.p.urlScans; i++ {
		url := a.corpus.AuthorURL(page + i/3)
		rt.ScanURL(fn, re, 0x4010, url)
	}
}

// renderItem renders one post/node/section: attribute tag generation
// (heap reuse), the texturize regexp chain (content sifting), and HTML
// escaping.
func (a *appBase) renderItem(rt *vm.Runtime, ob *vm.OutputBuffer, idx int) {
	rt.BeginSpan("render_item")
	defer rt.EndSpan()
	strFn := pick(a.cat.str, idx)
	heapFn := pick(a.cat.heap, idx)

	// Title: trim, case-normalize, escape.
	title := rt.Trim(strFn, a.corpus.Title(idx))
	title = rt.ToLower(pick(a.cat.str, idx+1), title)
	titleStr := rt.NewStr(heapFn, rt.EscapeHTML("htmlspecialchars", title))

	// Attribute tag: retrieve values, escape, concatenate, recycle.
	attrs := rt.NewArray(heapFn)
	for j := 0; j < a.p.attrsPerItem; j++ {
		rt.ASet(pick(a.cat.hash, idx+j), attrs, hashmap.StrKey(pick(attrKeys, j)),
			a.corpus.AuthorBytesVal(idx+j), true)
	}
	tag := rt.BuildTag(a.buildTagFn, "a", attrs, titleStr.Bytes())
	ob.Write(tag)
	rt.FreeArray(heapFn, attrs)
	rt.FreeStr(heapFn, titleStr)

	// Post metadata traffic against the persistent cache (dynamic keys):
	// mostly reads with periodic cache refreshes, landing the SET ratio
	// in the paper's 15-25% band.
	for j := 0; j < a.p.metaReads; j++ {
		k := hashmap.StrKey(metaKeys[(idx+j)%len(metaKeys)])
		if j%8 == 7 {
			rt.ASet(pick(a.cat.hash, idx+j), a.dbCache, k, boxInt(idx), true)
		} else {
			rt.AGet(pick(a.cat.hash, idx+j), a.dbCache, k, true)
		}
	}

	// Short-lived zval churn: intermediate string objects allocated and
	// recycled while assembling the item (the strong-reuse pattern).
	for j := 0; j < a.p.churn; j++ {
		z := rt.NewStr(pick(a.cat.heap, idx+j), a.corpus.Title(idx + j)[:16])
		rt.FreeStr(pick(a.cat.heap, idx+j), z)
	}

	// Shortcode and needle scans over the body (strpos-style). The body
	// is never mutated in place, so it can alias the corpus directly.
	body := a.corpus.Post(idx)
	for j := 0; j < a.p.stringOps; j++ {
		rt.Find(pick(a.cat.str, idx+j), body, shortcodeBytes[j%len(shortcodeBytes)])
	}

	// Body: the texturize chain runs over the excerpt; the whole body is
	// HTML-escaped on the way out.
	if len(a.p.chain) > 0 {
		ex := a.p.excerptLen
		if ex <= 0 || ex > len(body) {
			ex = len(body)
		}
		ch, err := rt.RefreshChain(a.chain, "wptexturize", a.p.chain)
		a.chain = ch
		if err == nil {
			excerpt, _ := ch.Apply("wptexturize", body[:ex])
			// Splice the texturized excerpt and the untouched tail into
			// one request-arena slice.
			merged := rt.Arena().Buf(len(excerpt) + len(body) - ex)
			merged = append(merged, excerpt...)
			merged = append(merged, body[ex:]...)
			body = merged
		}
	}
	body = rt.EscapeHTML("htmlspecialchars", body)
	bodyStr := rt.NewStr(pick(a.cat.heap, idx+1), body)
	ob.Write(bodyStr.Bytes())
	rt.FreeStr(pick(a.cat.heap, idx+1), bodyStr)
}

// renderComment renders one comment: nl2br, escaping, small allocations.
func (a *appBase) renderComment(rt *vm.Runtime, ob *vm.OutputBuffer, idx int) {
	rt.BeginSpan("render_comment")
	defer rt.EndSpan()
	strFn := pick(a.cat.str, idx+4)
	c := a.corpus.Comment(idx)
	c = rt.NL2BR(strFn, c)
	esc := rt.NewStr(pick(a.cat.heap, idx+2), rt.EscapeHTML("htmlspecialchars", c))
	ob.Write(esc.Bytes())
	rt.FreeStr(pick(a.cat.heap, idx+2), esc)
}

// chargeOther accounts the application logic outside the four categories:
// the JIT-compiled hottest function plus a flat spread of VM and
// application leaf functions (the Fig. 1 tail).
func (a *appBase) chargeOther(rt *vm.Runtime) {
	mt := rt.Meter()
	mt.AddUops("jit_compiled_code", sim.CatOther, a.p.jitUops)
	n := len(a.cat.other)
	for i := 0; i < n; i++ {
		// Mildly skewed flat distribution.
		w := a.p.otherUops * 2 / float64(n) * (1 - float64(i)/(1.4*float64(n)))
		mt.AddUops(a.cat.other[i], sim.CatOther, w)
	}
	// Abstraction overheads of the managed runtime, calibrated to the
	// paper's §3 magnitudes: reference counting contributes the most
	// (~4.4% of baseline execution), then type checks, then kernel
	// involvement in allocation, all removed by the respective
	// mitigations.
	mt.AddRefCount(int(a.p.otherUops / 14))
	mt.AddTypeCheck(int(a.p.otherUops / 24))
	kern := a.p.otherUops / 38
	if mt.Mit.TunedAllocator {
		kern /= 8
	}
	mt.AddUops("kernel_alloc", sim.CatKernel, kern)
}

var optionKeys = []string{
	"siteurl", "blogname", "template", "stylesheet", "active_plugins",
	"timezone_string", "permalink_structure", "default_category",
	"posts_per_page", "date_format", "users_can_register", "home",
}

var templateVars = []string{
	"post_title", "post_author", "post_date", "comment_count",
	"category_name", "page_template", "request_uri", "query_string",
	"session_token", "locale_code", "menu_active", "sidebar_state",
	"very_long_template_variable_name_overflow", // >24B: hardware bypass
}

var attrKeys = []string{"href", "title", "class", "rel", "id", "data-idx"}

var shortcodes = []string{
	"[gallery", "[caption", "[embed", "<!--more-->", "{{Infobox", "[[Category:",
}

// shortcodeBytes is the byte view of shortcodes, converted once so the
// per-item needle scans do not re-convert per call.
var shortcodeBytes = func() [][]byte {
	out := make([][]byte, len(shortcodes))
	for i, s := range shortcodes {
		out[i] = []byte(s)
	}
	return out
}()

// metaKeys precomputes every "meta_<var>_<n>" key the metadata paths
// can produce: the (templateVars, n%48) pattern repeats with period
// lcm(len(templateVars), 48), which 48*len(templateVars) is always a
// multiple of. Index with n % len(metaKeys).
var metaKeys = func() []string {
	keys := make([]string, 48*len(templateVars))
	for i := range keys {
		keys[i] = fmt.Sprintf("meta_%s_%d", pick(templateVars, i), i%48)
	}
	return keys
}()
