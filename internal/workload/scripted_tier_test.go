package workload

import (
	"reflect"
	"testing"

	"repro/internal/php"
	"repro/internal/vm"
)

// aggressiveTier promotes after one 4-request window with at least one
// call — fast enough for a short test run to cross the tier boundary.
func aggressiveTier() php.TierPolicy {
	return php.TierPolicy{WindowRequests: 4, HotCalls: 1, HotWindows: 1, ColdCalls: 0, ColdWindows: 8}
}

// TestPoolConfigureScriptTier drives a scripted pool through enough
// requests for auto promotion and checks the merged snapshot reflects
// bytecode-tier execution, with output identical to an untiered pool.
func TestPoolConfigureScriptTier(t *testing.T) {
	newRun := func(mode php.TierMode) (Result, php.TierSnapshot) {
		p, err := NewPoolSharedSeed(2, vm.Config{}, "phpscript-blog", 1)
		if err != nil {
			t.Fatal(err)
		}
		supported, err := p.ConfigureScriptTier(mode, aggressiveTier())
		if err != nil {
			t.Fatal(err)
		}
		if !supported {
			t.Fatal("phpscript-blog should support script tiering")
		}
		res := p.Run(LoadGenerator{Requests: 48, Warmup: 4}, 0)
		return res, p.TierSnapshot()
	}

	interpRes, interpSnap := newRun(php.TierInterp)
	autoRes, autoSnap := newRun(php.TierAuto)

	if !interpSnap.Enabled || interpSnap.BytecodeCalls != 0 {
		t.Errorf("interp-tier pool should stay on the tree-walker: %+v", interpSnap)
	}
	if !autoSnap.Enabled {
		t.Fatal("auto-tier snapshot should be enabled")
	}
	if autoSnap.Promotions == 0 || autoSnap.BytecodeCalls == 0 {
		t.Errorf("auto tier should promote and serve bytecode calls: %+v", autoSnap)
	}
	if autoSnap.ICSites == 0 || autoSnap.ICHits == 0 {
		t.Errorf("promoted blog script should exercise inline caches: %+v", autoSnap)
	}
	if interpRes.Requests != autoRes.Requests || interpRes.ResponseBytes != autoRes.ResponseBytes {
		t.Errorf("tiering changed served output volume: interp %d/%d bytes, auto %d/%d bytes",
			interpRes.Requests, interpRes.ResponseBytes, autoRes.Requests, autoRes.ResponseBytes)
	}
}

// TestPoolTierPromotionDeterminism runs the same seeded load twice and
// requires the same promotion outcome — the property the CI guard
// checks end-to-end.
func TestPoolTierPromotionDeterminism(t *testing.T) {
	run := func() php.TierSnapshot {
		p, err := NewPoolSharedSeed(2, vm.Config{}, "phpscript-blog", 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.ConfigureScriptTier(php.TierAuto, aggressiveTier()); err != nil {
			t.Fatal(err)
		}
		p.Run(LoadGenerator{Requests: 40, Warmup: 4}, 0)
		return p.TierSnapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.PromotedSet(), b.PromotedSet()) {
		t.Errorf("promotion set differs across identical runs:\n a %v\n b %v", a.PromotedSet(), b.PromotedSet())
	}
	if a.Promotions != b.Promotions || a.BytecodeCalls != b.BytecodeCalls {
		t.Errorf("tier counters differ across identical runs:\n a %+v\n b %+v", a, b)
	}
}
