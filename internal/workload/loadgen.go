package workload

import (
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// LoadGenerator drives requests at a runtime the way the oss-performance
// suite's generator does (§5.1): a fixed warmup phase whose costs are
// discarded, then a measured phase.
type LoadGenerator struct {
	// Warmup requests served before measurement (oss-performance: 300).
	Warmup int
	// Requests measured.
	Requests int
	// ContextSwitchEvery injects a context switch every n requests to
	// exercise the accelerator flush protocol (0 disables).
	ContextSwitchEvery int
}

// DefaultLoadGenerator matches the paper's methodology with a bounded
// measured phase (the paper measures for one minute of wall clock; we
// measure a fixed request count for determinism).
func DefaultLoadGenerator() LoadGenerator {
	return LoadGenerator{Warmup: 300, Requests: 200, ContextSwitchEvery: 64}
}

// KeyStats aggregates hash key statistics from the trace (§4.2's "about
// 95% of keys are at most 24 bytes" and "15–25% SET" observations).
type KeyStats struct {
	Gets        int64
	Sets        int64
	ShortKeys   int64 // keys <= 24 bytes
	TotalKeys   int64
	DynamicKeys int64
}

// SetRatio returns the SET share of hash requests.
func (k KeyStats) SetRatio() float64 {
	if k.Gets+k.Sets == 0 {
		return 0
	}
	return float64(k.Sets) / float64(k.Gets+k.Sets)
}

// ShortKeyFrac returns the fraction of keys at most 24 bytes long.
func (k KeyStats) ShortKeyFrac() float64 {
	if k.TotalKeys == 0 {
		return 0
	}
	return float64(k.ShortKeys) / float64(k.TotalKeys)
}

// DynamicFrac returns the fraction of hash accesses using dynamic keys.
func (k KeyStats) DynamicFrac() float64 {
	if k.TotalKeys == 0 {
		return 0
	}
	return float64(k.DynamicKeys) / float64(k.TotalKeys)
}

// LatencyStats summarizes the per-request wall-clock latency distribution
// of a measured run — the tail percentiles the serving literature reports
// alongside throughput.
type LatencyStats struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// LatencyStatsFrom computes the distribution summary over per-request
// wall latencies. The input is not modified.
func LatencyStatsFrom(d []time.Duration) LatencyStats {
	if len(d) == 0 {
		return LatencyStats{}
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(q float64) time.Duration {
		// Nearest-rank percentile: the smallest value with at least q of
		// the distribution at or below it.
		idx := int(q*float64(len(s))+0.9999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return LatencyStats{
		Count: len(s),
		Mean:  sum / time.Duration(len(s)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   s[len(s)-1],
	}
}

// Result is one measured load-generation run. Serial runs set Workers to
// 1; Pool.Run reports the fleet-level aggregate across all workers.
type Result struct {
	App           string
	Requests      int
	Workers       int
	ResponseBytes int64
	Cycles        float64
	Uops          float64
	EnergyPJ      float64
	// Categories breaks Cycles down by activity category (exact, from
	// the merged meter — not derived from sampled spans).
	Categories sim.CategoryVec
	Keys       KeyStats
	Wall       time.Duration
	Latency    LatencyStats
}

// CyclesPerRequest returns the mean request cost.
func (r Result) CyclesPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return r.Cycles / float64(r.Requests)
}

// CategoryShare returns the fraction of total cycles attributed to c
// (0 when the run recorded no cycles, never NaN).
func (r Result) CategoryShare(c sim.Category) float64 {
	if r.Cycles <= 0 {
		return 0
	}
	return r.Categories[c] / r.Cycles
}

// Throughput returns measured requests per wall-clock second (0 when the
// run recorded no wall time).
func (r Result) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Wall.Seconds()
}

// Run drives the workload: warmup (costs discarded, accelerator state
// kept warm), then the measured phase.
func (lg LoadGenerator) Run(rt *vm.Runtime, app App) Result {
	for i := 0; i < lg.Warmup; i++ {
		app.ServeRequest(rt)
		if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
			rt.ContextSwitch()
		}
	}
	// Discard warmup costs but keep hardware state warm, mirroring the
	// steady-state measurement window.
	rt.Meter().Reset()
	if rt.Trace() != nil {
		rt.Trace().Reset()
	}

	res := Result{App: app.Name(), Requests: lg.Requests, Workers: 1}
	lats := make([]time.Duration, 0, lg.Requests)
	start := time.Now()
	for i := 0; i < lg.Requests; i++ {
		reqStart := time.Now()
		page := app.ServeRequest(rt)
		lats = append(lats, time.Since(reqStart))
		res.ResponseBytes += int64(len(page))
		if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
			rt.ContextSwitch()
		}
	}
	res.Wall = time.Since(start)
	res.Latency = LatencyStatsFrom(lats)
	res.Cycles = rt.Meter().TotalCycles()
	res.Uops = rt.Meter().TotalUops()
	res.EnergyPJ = rt.Meter().TotalEnergy()
	res.Categories = rt.Meter().CategoryCyclesVec()
	res.Keys = keyStatsFromTrace(rt.Trace())
	return res
}

func keyStatsFromTrace(rec *trace.Recorder) KeyStats {
	var ks KeyStats
	if rec == nil {
		return ks
	}
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindHashGet:
			ks.Gets++
		case trace.KindHashSet:
			ks.Sets++
		default:
			continue
		}
		ks.TotalKeys++
		if e.B <= 24 {
			ks.ShortKeys++
		}
		if e.C == 1 {
			ks.DynamicKeys++
		}
	}
	return ks
}
