package workload

import (
	"repro/internal/trace"
	"repro/internal/vm"
)

// LoadGenerator drives requests at a runtime the way the oss-performance
// suite's generator does (§5.1): a fixed warmup phase whose costs are
// discarded, then a measured phase.
type LoadGenerator struct {
	// Warmup requests served before measurement (oss-performance: 300).
	Warmup int
	// Requests measured.
	Requests int
	// ContextSwitchEvery injects a context switch every n requests to
	// exercise the accelerator flush protocol (0 disables).
	ContextSwitchEvery int
}

// DefaultLoadGenerator matches the paper's methodology with a bounded
// measured phase (the paper measures for one minute of wall clock; we
// measure a fixed request count for determinism).
func DefaultLoadGenerator() LoadGenerator {
	return LoadGenerator{Warmup: 300, Requests: 200, ContextSwitchEvery: 64}
}

// KeyStats aggregates hash key statistics from the trace (§4.2's "about
// 95% of keys are at most 24 bytes" and "15–25% SET" observations).
type KeyStats struct {
	Gets        int64
	Sets        int64
	ShortKeys   int64 // keys <= 24 bytes
	TotalKeys   int64
	DynamicKeys int64
}

// SetRatio returns the SET share of hash requests.
func (k KeyStats) SetRatio() float64 {
	if k.Gets+k.Sets == 0 {
		return 0
	}
	return float64(k.Sets) / float64(k.Gets+k.Sets)
}

// ShortKeyFrac returns the fraction of keys at most 24 bytes long.
func (k KeyStats) ShortKeyFrac() float64 {
	if k.TotalKeys == 0 {
		return 0
	}
	return float64(k.ShortKeys) / float64(k.TotalKeys)
}

// DynamicFrac returns the fraction of hash accesses using dynamic keys.
func (k KeyStats) DynamicFrac() float64 {
	if k.TotalKeys == 0 {
		return 0
	}
	return float64(k.DynamicKeys) / float64(k.TotalKeys)
}

// Result is one measured load-generation run.
type Result struct {
	App           string
	Requests      int
	ResponseBytes int64
	Cycles        float64
	Uops          float64
	EnergyPJ      float64
	Keys          KeyStats
}

// CyclesPerRequest returns the mean request cost.
func (r Result) CyclesPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return r.Cycles / float64(r.Requests)
}

// Run drives the workload: warmup (costs discarded, accelerator state
// kept warm), then the measured phase.
func (lg LoadGenerator) Run(rt *vm.Runtime, app App) Result {
	for i := 0; i < lg.Warmup; i++ {
		app.ServeRequest(rt)
		if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
			rt.ContextSwitch()
		}
	}
	// Discard warmup costs but keep hardware state warm, mirroring the
	// steady-state measurement window.
	rt.Meter().Reset()
	if rt.Trace() != nil {
		rt.Trace().Reset()
	}

	res := Result{App: app.Name(), Requests: lg.Requests}
	for i := 0; i < lg.Requests; i++ {
		page := app.ServeRequest(rt)
		res.ResponseBytes += int64(len(page))
		if lg.ContextSwitchEvery > 0 && (i+1)%lg.ContextSwitchEvery == 0 {
			rt.ContextSwitch()
		}
	}
	res.Cycles = rt.Meter().TotalCycles()
	res.Uops = rt.Meter().TotalUops()
	res.EnergyPJ = rt.Meter().TotalEnergy()
	res.Keys = keyStatsFromTrace(rt)
	return res
}

func keyStatsFromTrace(rt *vm.Runtime) KeyStats {
	var ks KeyStats
	rec := rt.Trace()
	if rec == nil {
		return ks
	}
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindHashGet:
			ks.Gets++
		case trace.KindHashSet:
			ks.Sets++
		default:
			continue
		}
		ks.TotalKeys++
		if e.B <= 24 {
			ks.ShortKeys++
		}
		if e.C == 1 {
			ks.DynamicKeys++
		}
	}
	return ks
}
