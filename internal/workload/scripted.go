package workload

import (
	"repro/internal/php"
	"repro/internal/vm"
)

// ScriptedApp runs an actual PHP program per request through the
// interpreter, so the workload's hash/heap/string/regexp activity comes
// from real script execution rather than a Go-coded request recipe.
type ScriptedApp struct {
	name string
	prog *php.Program
	seq  int64
}

// NewScripted wraps parsed PHP source as an App.
func NewScripted(name, src string) (*ScriptedApp, error) {
	prog, err := php.Parse(src)
	if err != nil {
		return nil, err
	}
	return &ScriptedApp{name: name, prog: prog}, nil
}

// Name returns the workload name.
func (s *ScriptedApp) Name() string { return s.name }

// ServeRequest runs the script once with $req set to the request number.
func (s *ScriptedApp) ServeRequest(rt *vm.Runtime) []byte {
	s.seq++
	return s.ServePage(rt, int(s.seq))
}

// ServePage runs the script once with $req set to the page index (see
// PageApp).
func (s *ScriptedApp) ServePage(rt *vm.Runtime, page int) []byte {
	in := php.New(rt, s.prog)
	in.SetGlobal("req", int64(page))
	out, err := in.Run()
	if err != nil {
		panic("workload: scripted app failed: " + err.Error())
	}
	return out
}

// BlogScript is a self-contained PHP blog page: option loading, post
// rendering with texturize-style preg_replace chains, tag building with
// escaped attributes, and comment formatting — the WordPress request
// shape, as an actual PHP program.
const BlogScript = `<!DOCTYPE html>
<?php
function site_options() {
	return [
		'blogname' => "repro blog",
		'posts_per_page' => 4,
		'tagline' => "it's \"hardware\" for PHP",
	];
}

function load_post($id) {
	$author = "author" . ($id % 7);
	$body = "The quick brown fox said \"hello\" to the lazy dog. ";
	$body .= str_repeat("Plain prose fills the middle of the article with ordinary words. ", 6);
	$body .= "It's a wrap.
New paragraph starts here with <em>markup</em> and more text.";
	return [
		'id' => $id,
		'title' => "  Post number " . $id . " isn't boring  ",
		'author' => $author,
		'href' => "/?p=" . $id,
		'body' => $body,
	];
}

function texturize($text) {
	$text = preg_replace('/"/', "&#8221;", $text);
	$text = preg_replace('/\n/', "<br />", $text);
	$text = preg_replace('/</', "&lt;", $text);
	return $text;
}

function render_post($post) {
	$meta = "";
	foreach (["author", "id", "href"] as $fld) {
		$meta .= $post[$fld] . ";";
	}
	extract($post);
	$out = "<article id=\"post-" . $id . "\">";
	$out .= "<h2><a href=\"" . htmlspecialchars($href) . "\">";
	$out .= htmlspecialchars(trim($title)) . "</a></h2>";
	$out .= "<address>" . strtoupper($author) . "</address>";
	$out .= "<div>" . texturize($body) . "</div>";
	$out .= "</article>";
	return $out;
}

function render_comment($post_id, $n) {
	$text = "Comment $n on post $post_id: nice article!
It has a line break and a \"quote\".";
	return "<li>" . nl2br(addslashes($text)) . "</li>";
}

$opts = site_options();
echo "<html><head><title>", htmlspecialchars($opts['blogname']), "</title></head><body>";
echo "<p>", texturize($opts['tagline']), "</p>";

for ($i = 0; $i < $opts['posts_per_page']; $i++) {
	$post = load_post($req * 10 + $i);
	echo render_post($post);
	echo "<ul>";
	for ($c = 0; $c < 2; $c++) {
		echo render_comment($post['id'], $c);
	}
	echo "</ul>";
}
echo "</body></html>";
`

// NewBlogScript builds the scripted blog workload.
func NewBlogScript() *ScriptedApp {
	app, err := NewScripted("phpscript-blog", BlogScript)
	if err != nil {
		panic(err) // the embedded script must parse
	}
	return app
}
