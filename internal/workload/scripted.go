package workload

import (
	"sync"
	"sync/atomic"

	"repro/internal/php"
	"repro/internal/vm"
)

// scriptEntry shares one parsed program — and, lazily, one compiled
// bytecode artifact — across every ScriptedApp built from the same
// source. Pool workers each construct their own app instance, so without
// this cache each worker would re-parse and re-compile identical source.
type scriptEntry struct {
	prog *php.Program
	once sync.Once
	comp *php.Compiled
	err  error
}

// scriptCache maps source text to its shared entry.
var scriptCache sync.Map // string -> *scriptEntry

func (e *scriptEntry) compiled() (*php.Compiled, error) {
	e.once.Do(func() { e.comp, e.err = php.Compile(e.prog) })
	return e.comp, e.err
}

// ScriptedApp runs an actual PHP program per request through the
// interpreter, so the workload's hash/heap/string/regexp activity comes
// from real script execution rather than a Go-coded request recipe.
//
// Each worker runtime gets a persistent php.Interp engine, so inline
// caches, type feedback, and tier promotion state survive across
// requests (per-worker, like a PHP-FPM process's JIT state), while the
// compiled program itself is shared read-only across the pool.
type ScriptedApp struct {
	name string
	ent  *scriptEntry
	seq  atomic.Int64

	mu         sync.Mutex
	configured bool
	tier       php.TierMode
	policy     php.TierPolicy
	engines    sync.Map // *vm.Runtime -> *php.Interp
}

// NewScripted wraps parsed PHP source as an App. Identical source shares
// one parsed (and compiled) program across instances.
func NewScripted(name, src string) (*ScriptedApp, error) {
	if v, ok := scriptCache.Load(src); ok {
		return &ScriptedApp{name: name, ent: v.(*scriptEntry)}, nil
	}
	prog, err := php.Parse(src)
	if err != nil {
		return nil, err
	}
	ent := &scriptEntry{prog: prog}
	if v, loaded := scriptCache.LoadOrStore(src, ent); loaded {
		ent = v.(*scriptEntry)
	}
	return &ScriptedApp{name: name, ent: ent}, nil
}

// Name returns the workload name.
func (s *ScriptedApp) Name() string { return s.name }

// SetScriptTier selects the execution tier for subsequent requests and
// compiles the shared program. Existing per-runtime
// engines are discarded so every worker picks the new mode up on its
// next request; call it while the pool is quiesced (Pool.ConfigureScriptTier
// holds every worker).
func (s *ScriptedApp) SetScriptTier(mode php.TierMode, policy php.TierPolicy) error {
	if _, err := s.ent.compiled(); err != nil {
		return err
	}
	s.mu.Lock()
	s.configured = true
	s.tier = mode
	s.policy = policy
	s.mu.Unlock()
	s.engines.Range(func(k, _ interface{}) bool {
		s.engines.Delete(k)
		return true
	})
	return nil
}

// TierSnapshotFor returns the tier state of the engine bound to rt
// (zero-valued when rt has not served yet or the tier is off). The
// caller must own the runtime's worker.
func (s *ScriptedApp) TierSnapshotFor(rt *vm.Runtime) php.TierSnapshot {
	if v, ok := s.engines.Load(rt); ok {
		return v.(*php.Interp).TierSnapshot()
	}
	return php.TierSnapshot{}
}

// engine returns rt's persistent interpreter, creating and
// tier-configuring it on first use. The engine is only ever driven by
// the goroutine owning the worker, but creation may race a concurrent
// SetScriptTier reset, hence the mutex around the mode read.
func (s *ScriptedApp) engine(rt *vm.Runtime) *php.Interp {
	if v, ok := s.engines.Load(rt); ok {
		return v.(*php.Interp)
	}
	s.mu.Lock()
	configured, mode, policy := s.configured, s.tier, s.policy
	s.mu.Unlock()
	in := php.New(rt, s.ent.prog)
	if configured {
		// An explicit interp tier still installs the controller, so
		// /tierz reports call counts even before any promotion policy
		// is in play; an unconfigured app pays no tier overhead at all.
		comp, err := s.ent.compiled()
		if err != nil {
			panic("workload: scripted app compile failed: " + err.Error())
		}
		if err := in.EnableTier(comp, mode, policy); err != nil {
			panic("workload: scripted app tier setup failed: " + err.Error())
		}
	}
	if v, loaded := s.engines.LoadOrStore(rt, in); loaded {
		return v.(*php.Interp)
	}
	return in
}

// ServeRequest runs the script once with $req set to the request number.
// The sequence counter is atomic: a ScriptedApp may be shared across
// pool workers (compiled programs are cached per source), so requests
// can arrive from several goroutines at once.
func (s *ScriptedApp) ServeRequest(rt *vm.Runtime) []byte {
	return s.ServePage(rt, int(s.seq.Add(1)))
}

// ServePage runs the script once with $req set to the page index (see
// PageApp).
func (s *ScriptedApp) ServePage(rt *vm.Runtime, page int) []byte {
	in := s.engine(rt)
	in.SetGlobal("req", int64(page))
	out, err := in.Run()
	if err != nil {
		panic("workload: scripted app failed: " + err.Error())
	}
	return out
}

// BlogScript is a self-contained PHP blog page: option loading, post
// rendering with texturize-style preg_replace chains, tag building with
// escaped attributes, and comment formatting — the WordPress request
// shape, as an actual PHP program.
const BlogScript = `<!DOCTYPE html>
<?php
function site_options() {
	return [
		'blogname' => "repro blog",
		'posts_per_page' => 4,
		'tagline' => "it's \"hardware\" for PHP",
	];
}

function load_post($id) {
	$author = "author" . ($id % 7);
	$body = "The quick brown fox said \"hello\" to the lazy dog. ";
	$body .= str_repeat("Plain prose fills the middle of the article with ordinary words. ", 6);
	$body .= "It's a wrap.
New paragraph starts here with <em>markup</em> and more text.";
	return [
		'id' => $id,
		'title' => "  Post number " . $id . " isn't boring  ",
		'author' => $author,
		'href' => "/?p=" . $id,
		'body' => $body,
	];
}

function texturize($text) {
	$text = preg_replace('/"/', "&#8221;", $text);
	$text = preg_replace('/\n/', "<br />", $text);
	$text = preg_replace('/</', "&lt;", $text);
	return $text;
}

function render_post($post) {
	$meta = "";
	foreach (["author", "id", "href"] as $fld) {
		$meta .= $post[$fld] . ";";
	}
	extract($post);
	$out = "<article id=\"post-" . $id . "\">";
	$out .= "<h2><a href=\"" . htmlspecialchars($href) . "\">";
	$out .= htmlspecialchars(trim($title)) . "</a></h2>";
	$out .= "<address>" . strtoupper($author) . "</address>";
	$out .= "<div>" . texturize($body) . "</div>";
	$out .= "</article>";
	return $out;
}

function render_comment($post_id, $n) {
	$text = "Comment $n on post $post_id: nice article!
It has a line break and a \"quote\".";
	return "<li>" . nl2br(addslashes($text)) . "</li>";
}

$opts = site_options();
echo "<html><head><title>", htmlspecialchars($opts['blogname']), "</title></head><body>";
echo "<p>", texturize($opts['tagline']), "</p>";

for ($i = 0; $i < $opts['posts_per_page']; $i++) {
	$post = load_post($req * 10 + $i);
	echo render_post($post);
	echo "<ul>";
	for ($c = 0; $c < 2; $c++) {
		echo render_comment($post['id'], $c);
	}
	echo "</ul>";
}
echo "</body></html>";
`

// NewBlogScript builds the scripted blog workload.
func NewBlogScript() *ScriptedApp {
	app, err := NewScripted("phpscript-blog", BlogScript)
	if err != nil {
		panic(err) // the embedded script must parse
	}
	return app
}
