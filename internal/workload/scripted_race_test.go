package workload

import (
	"sync"
	"testing"

	"repro/internal/vm"
)

// TestScriptedAppConcurrentServe hammers a single ScriptedApp from many
// goroutines, each with its own runtime — the shape the shared
// compiled-program cache creates. Run under -race this is the
// regression test for the formerly unsynchronized seq counter.
func TestScriptedAppConcurrentServe(t *testing.T) {
	app := NewBlogScript()
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := vm.New(vm.Config{})
			for i := 0; i < perG; i++ {
				if out := app.ServeRequest(rt); len(out) == 0 {
					t.Error("empty response from concurrent ServeRequest")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := app.seq.Load(); got != goroutines*perG {
		t.Fatalf("seq = %d after %d requests, want %d (lost increments)", got, goroutines*perG, goroutines*perG)
	}
}

// TestSpecWebAppConcurrentServe gives the same treatment to specWebApp,
// which shared the unsynchronized counter pattern.
func TestSpecWebAppConcurrentServe(t *testing.T) {
	app := NewSPECWebBanking(1)
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := vm.New(vm.Config{})
			for i := 0; i < perG; i++ {
				if out := app.ServeRequest(rt); len(out) == 0 {
					t.Error("empty response from concurrent ServeRequest")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := app.(*specWebApp).seq.Load(); got != goroutines*perG {
		t.Fatalf("seq = %d after %d requests, want %d (lost increments)", got, goroutines*perG, goroutines*perG)
	}
}
