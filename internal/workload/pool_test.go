package workload

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

func swConfig() vm.Config {
	return vm.Config{Mitigations: sim.AllMitigations()}
}

func hwConfig() vm.Config {
	return vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations()}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, swConfig(), "wordpress", 1); err == nil {
		t.Errorf("0 workers should error")
	}
	if _, err := NewPool(2, swConfig(), "rails", 1); err == nil {
		t.Errorf("unknown app should error")
	}
	p, err := NewPool(3, swConfig(), "wordpress", 1)
	if err != nil || p.Size() != 3 {
		t.Fatalf("NewPool = %v, %v", p, err)
	}
}

// TestPoolRunFourWorkers is the acceptance test: a pool with >= 4 workers
// serving concurrently (run under -race), producing a merged fleet result
// with sane latency percentiles and throughput.
func TestPoolRunFourWorkers(t *testing.T) {
	p, err := NewPool(4, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	lg := LoadGenerator{Warmup: 6, Requests: 24, ContextSwitchEvery: 8}
	res := p.Run(lg, 0)
	if res.Requests != 24 || res.Workers != 4 {
		t.Fatalf("fleet result header wrong: %+v", res)
	}
	if res.Cycles <= 0 || res.Uops <= 0 || res.ResponseBytes <= 0 {
		t.Errorf("no measured work: %+v", res)
	}
	if res.Keys.TotalKeys == 0 {
		t.Errorf("merged trace produced no key stats")
	}
	l := res.Latency
	if l.Count != 24 {
		t.Errorf("latency count %d, want 24", l.Count)
	}
	if l.P50 <= 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
		t.Errorf("percentiles out of order: %+v", l)
	}
	if res.Wall <= 0 || res.Throughput() <= 0 {
		t.Errorf("throughput not measured: wall=%v", res.Wall)
	}
}

// TestPoolDeterministicMetrics: the static request partition plus
// per-worker seeds make the simulated metrics independent of goroutine
// scheduling.
func TestPoolDeterministicMetrics(t *testing.T) {
	run := func(concurrency int) Result {
		p, err := NewPool(4, hwConfig(), "mediawiki", 3)
		if err != nil {
			t.Fatal(err)
		}
		return p.Run(LoadGenerator{Warmup: 4, Requests: 18, ContextSwitchEvery: 8}, concurrency)
	}
	// TotalCycles sums a map in randomized iteration order, so allow
	// float-summation jitter at the ulp scale; real nondeterminism (e.g.
	// scheduling-dependent map IDs) shows up orders of magnitude larger.
	same := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	a, b, c := run(0), run(0), run(2)
	if !same(a.Cycles, b.Cycles) || !same(a.Uops, b.Uops) || !same(a.EnergyPJ, b.EnergyPJ) {
		t.Errorf("pool metrics not deterministic: %v vs %v cycles", a.Cycles, b.Cycles)
	}
	if a.ResponseBytes != b.ResponseBytes {
		t.Errorf("response bytes not deterministic")
	}
	// Bounding concurrency changes scheduling but not the simulated work.
	if !same(a.Cycles, c.Cycles) {
		t.Errorf("concurrency bound changed simulated cycles: %v vs %v", a.Cycles, c.Cycles)
	}
}

// TestPoolRatiosMatchSerial: per-config normalized cycle ratios from a
// 4-worker pool must match the serial run within noise (the workers see
// slightly different request streams via their per-worker seeds).
func TestPoolRatiosMatchSerial(t *testing.T) {
	lg := LoadGenerator{Warmup: 20, Requests: 40, ContextSwitchEvery: 32}

	serialRatio := func(name string) float64 {
		base, _ := ByName(name, 4)
		accel, _ := ByName(name, 4)
		sw := lg.Run(vm.New(swConfig()), base)
		hw := lg.Run(vm.New(hwConfig()), accel)
		return hw.Cycles / sw.Cycles
	}
	poolRatio := func(name string) float64 {
		swPool, err := NewPool(4, swConfig(), name, 4)
		if err != nil {
			t.Fatal(err)
		}
		hwPool, err := NewPool(4, hwConfig(), name, 4)
		if err != nil {
			t.Fatal(err)
		}
		sw := swPool.Run(lg, 0)
		hw := hwPool.Run(lg, 0)
		return hw.Cycles / sw.Cycles
	}

	for _, name := range []string{"wordpress", "drupal"} {
		s, p := serialRatio(name), poolRatio(name)
		if s <= 0 || p <= 0 {
			t.Fatalf("%s: degenerate ratios serial=%v pool=%v", name, s, p)
		}
		if diff := p/s - 1; diff > 0.10 || diff < -0.10 {
			t.Errorf("%s: pool accel ratio %0.4f vs serial %0.4f (off by %0.1f%%)",
				name, p, s, 100*diff)
		}
	}
}

// TestPoolAcquireReleaseConcurrent exercises the phpserve dispatch path:
// many goroutines competing for workers, each serving requests on
// whichever worker is free.
func TestPoolAcquireReleaseConcurrent(t *testing.T) {
	p, err := NewPool(4, swConfig(), "drupal", 2)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				w := p.Acquire()
				if page := w.ServeOne(); len(page) == 0 {
					t.Error("empty page from pool worker")
				}
				p.Release(w)
			}
		}()
	}
	wg.Wait()
	mt := p.MergedMeter()
	if mt.TotalCycles() <= 0 {
		t.Errorf("merged meter empty after concurrent serving")
	}
	total := 0
	p.acquireAll()
	for _, w := range p.workers {
		total += w.Served()
	}
	p.releaseAll()
	if total != clients*perClient {
		t.Errorf("served %d requests, want %d", total, clients*perClient)
	}
}

func TestPoolMoreWorkersThanRequests(t *testing.T) {
	p, err := NewPool(6, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(LoadGenerator{Warmup: 1, Requests: 3}, 0)
	if res.Requests != 3 {
		t.Errorf("served %d, want 3", res.Requests)
	}
	if res.Latency.Count != 3 {
		t.Errorf("latency count %d, want 3", res.Latency.Count)
	}
}

func TestLatencyStatsPercentiles(t *testing.T) {
	var d []time.Duration
	for i := 1; i <= 100; i++ {
		d = append(d, time.Duration(i)*time.Millisecond)
	}
	l := LatencyStatsFrom(d)
	if l.Count != 100 {
		t.Errorf("count %d", l.Count)
	}
	if l.P50 != 50*time.Millisecond || l.P95 != 95*time.Millisecond || l.P99 != 99*time.Millisecond {
		t.Errorf("percentiles wrong: p50=%v p95=%v p99=%v", l.P50, l.P95, l.P99)
	}
	if l.Max != 100*time.Millisecond {
		t.Errorf("max %v", l.Max)
	}
	if l.Mean != 50500*time.Microsecond {
		t.Errorf("mean %v", l.Mean)
	}
	if z := LatencyStatsFrom(nil); z.Count != 0 || z.P99 != 0 {
		t.Errorf("empty input should zero out: %+v", z)
	}
}

func TestThroughputGuardsZeroWall(t *testing.T) {
	if r := (Result{Requests: 10}); r.Throughput() != 0 {
		t.Errorf("zero wall must not divide: %v", r.Throughput())
	}
	if r := (Result{}); r.CyclesPerRequest() != 0 {
		t.Errorf("zero requests must not divide")
	}
}

// TestServeOneProfiledSpan: the profiled path must attribute the
// request's cycles to the paper's categories, and the breakdown must sum
// to the request's total cycle delta.
func TestServeOneProfiledSpan(t *testing.T) {
	p, err := NewPool(1, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Acquire()
	defer p.Release(w)
	w.ServeOne() // warm metadata caches so the span sees steady state

	before := w.Runtime().Meter().TotalCycles()
	page, sp := w.ServeOneProfiled()
	after := w.Runtime().Meter().TotalCycles()
	if len(page) == 0 {
		t.Fatal("empty page")
	}
	if !sp.Sampled || sp.Worker != 0 || sp.Wall <= 0 {
		t.Errorf("span header wrong: %+v", sp)
	}
	delta := after - before
	if math.Abs(sp.Cycles-delta) > 1e-6*delta {
		t.Errorf("span cycles %v != meter delta %v", sp.Cycles, delta)
	}
	if math.Abs(sp.Categories.Total()-sp.Cycles) > 1e-9*sp.Cycles {
		t.Errorf("breakdown sum %v != total %v", sp.Categories.Total(), sp.Cycles)
	}
	for _, c := range []sim.Category{sim.CatHash, sim.CatHeap, sim.CatString, sim.CatRegex} {
		if sp.Categories[c] <= 0 {
			t.Errorf("category %v has no cycles in span: %+v", c, sp.Categories)
		}
	}
}

// TestServeOneProfiledTree: a sampled request carries a span tree whose
// root matches the span totals and whose self-cycles telescope back to
// the root — the /tracez export invariant.
func TestServeOneProfiledTree(t *testing.T) {
	p, err := NewPool(1, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Acquire()
	defer p.Release(w)
	w.ServeOne()

	_, sp := w.ServeOneProfiled()
	tree := sp.Tree
	if tree == nil {
		t.Fatal("sampled span has no tree")
	}
	if tree.Worker != 0 || tree.Root == nil || tree.Root.Name != "request" {
		t.Fatalf("tree header: %+v", tree)
	}
	if tree.Root.Cycles != sp.Cycles || tree.Root.Categories != sp.Categories {
		t.Errorf("tree root (%v) disagrees with span (%v)", tree.Root.Cycles, sp.Cycles)
	}
	var selfSum float64
	names := map[string]bool{}
	tree.Root.Walk(func(s *obs.TreeSpan, _ int) {
		selfSum += s.SelfCycles()
		names[s.Name] = true
	})
	if math.Abs(selfSum-tree.Root.Cycles) > 1e-6*tree.Root.Cycles {
		t.Errorf("Σ self-cycles %v != root inclusive %v", selfSum, tree.Root.Cycles)
	}
	for _, want := range []string{"render", "load_config", "route_request", "render_item", "vm:build_tag", "vm:chain_apply"} {
		if !names[want] {
			t.Errorf("tree is missing a %q span; have %v", want, names)
		}
	}
	// The unsampled path must not leave a builder attached.
	if w.Runtime().Tracing() {
		t.Error("runtime still tracing after profiled request")
	}
	_, sp2 := w.serveSpan(false)
	if sp2.Tree != nil {
		t.Error("unsampled request grew a tree")
	}
}

// TestPoolRunWithCollector: with a collector attached, Run feeds every
// measured request through it and samples spans at the configured rate.
func TestPoolRunWithCollector(t *testing.T) {
	p, err := NewPool(2, swConfig(), "drupal", 1)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(0.25, nil, nil)
	p.SetCollector(col)
	res := p.Run(LoadGenerator{Warmup: 2, Requests: 40}, 0)
	snap := col.Snapshot()
	if snap.Requests != 40 {
		t.Errorf("collector saw %d requests, want 40", snap.Requests)
	}
	if snap.SampledSpans != 10 {
		t.Errorf("sampled %d spans at rate 0.25 over 40, want 10", snap.SampledSpans)
	}
	if snap.Latency.Count != 40 {
		t.Errorf("histogram count = %d", snap.Latency.Count)
	}
	if res.Requests != 40 {
		t.Errorf("result requests = %d", res.Requests)
	}
	// The collector must not perturb the simulated metrics: a run without
	// one yields identical cycles.
	p2, err := NewPool(2, swConfig(), "drupal", 1)
	if err != nil {
		t.Fatal(err)
	}
	res2 := p2.Run(LoadGenerator{Warmup: 2, Requests: 40}, 0)
	if math.Abs(res.Cycles-res2.Cycles) > 1e-9*res.Cycles {
		t.Errorf("collector changed simulated cycles: %v vs %v", res.Cycles, res2.Cycles)
	}
}

// TestResultCategories: Run's category breakdown sums to the total and
// never divides by zero.
func TestResultCategories(t *testing.T) {
	p, err := NewPool(2, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(LoadGenerator{Warmup: 2, Requests: 8}, 0)
	if math.Abs(res.Categories.Total()-res.Cycles) > 1e-9*res.Cycles {
		t.Errorf("categories sum %v != cycles %v", res.Categories.Total(), res.Cycles)
	}
	var shares float64
	for _, c := range sim.Categories() {
		shares += res.CategoryShare(c)
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("shares sum to %v", shares)
	}
	if (Result{}).CategoryShare(sim.CatHash) != 0 {
		t.Errorf("zero-cycle result must not divide")
	}
}

// TestPoolSnapshot: one barrier yields a consistent meter + trace +
// accel view, including the regex cache and hardware hash table
// counters.
func TestPoolSnapshot(t *testing.T) {
	p, err := NewPool(2, hwConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(LoadGenerator{Warmup: 2, Requests: 12}, 0)
	ps := p.Snapshot()
	if ps.Meter.TotalCycles() <= 0 {
		t.Errorf("snapshot meter empty")
	}
	if ps.Trace == nil || ps.Trace.Total() == 0 {
		t.Errorf("snapshot trace empty")
	}
	if ps.Accel.HashTable.Gets == 0 {
		t.Errorf("no hardware hash table activity: %+v", ps.Accel.HashTable)
	}
	if ps.Accel.RegexLookups == 0 || ps.Accel.RegexHits == 0 {
		t.Errorf("no regex cache activity: %+v", ps.Accel)
	}
	if ps.Accel.RegexHits > ps.Accel.RegexLookups {
		t.Errorf("hits exceed lookups: %+v", ps.Accel)
	}
	kt := ps.Trace.KindTotals()
	if kt[trace.KindHashGet] == 0 || kt[trace.KindRequest] == 0 {
		t.Errorf("trace kind totals empty: %v", kt)
	}
}

// TestPoolSnapshotConcurrent is the regression test for the scrape
// deadlock: two overlapping whole-pool drains (a /metrics scrape racing
// /stats, or duplicate scraper replicas) used to each pull a subset of
// workers off the free list and block forever holding them. With snapMu
// serializing drains, concurrent snapshots during live serving must all
// complete.
func TestPoolSnapshotConcurrent(t *testing.T) {
	p, err := NewPool(3, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ { // serving clients
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					w := p.Acquire()
					w.ServeOne()
					p.Release(w)
				}
			}()
		}
		for s := 0; s < 4; s++ { // overlapping scrapers
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if ps := p.Snapshot(); ps.Meter == nil {
						t.Error("nil snapshot meter")
					}
					p.MergedMeter()
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent snapshots deadlocked")
	}
}

// TestWorkerLatenciesBounded: serving frontends never reset their
// workers, so the per-worker latency slice must compact at the cap
// instead of growing for the life of the process.
func TestWorkerLatenciesBounded(t *testing.T) {
	p, err := NewPool(1, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Acquire()
	defer p.Release(w)
	// Pre-fill to the cap rather than rendering 16k pages.
	w.latencies = make([]time.Duration, maxWorkerLatencies)
	w.ServeOne()
	if got, want := len(w.latencies), maxWorkerLatencies/2+1; got != want {
		t.Errorf("after compaction len = %d, want %d", got, want)
	}
	if w.latencies[len(w.latencies)-1] <= 0 {
		t.Errorf("newest latency not recorded after compaction")
	}
}

// BenchmarkPoolServe measures the serving path without observability, the
// baseline for the sampling-overhead bound.
func BenchmarkPoolServe(b *testing.B) {
	benchmarkPoolServe(b, nil)
}

// BenchmarkPoolServeSampled001 is the acceptance benchmark: with spans
// sampled at rate 0.01 the wall-time overhead versus BenchmarkPoolServe
// must stay under 5%.
func BenchmarkPoolServeSampled001(b *testing.B) {
	benchmarkPoolServe(b, obs.NewCollector(0.01, nil, nil))
}

// BenchmarkPoolServeSampledAll profiles every request — the worst case,
// for quantifying the span cost itself.
func BenchmarkPoolServeSampledAll(b *testing.B) {
	benchmarkPoolServe(b, obs.NewCollector(1, nil, nil))
}

func benchmarkPoolServe(b *testing.B, col *obs.Collector) {
	p, err := NewPool(1, hwConfig(), "wordpress", 1)
	if err != nil {
		b.Fatal(err)
	}
	p.SetCollector(col)
	p.Run(LoadGenerator{Warmup: 50}, 0) // steady state
	w := p.Acquire()
	defer p.Release(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if col == nil {
			w.ServeOne()
		} else {
			page, sp := w.serveSpan(col.ShouldSample())
			col.Observe(sp, len(page))
		}
	}
}

// TestAcquireCtxPrefersFreeWorker: a free worker beats an
// already-expired context — admission checks the deadline, AcquireCtx
// only enforces it while actually waiting.
func TestAcquireCtxPrefersFreeWorker(t *testing.T) {
	p, err := NewPool(1, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := p.AcquireCtx(ctx)
	if err != nil || w == nil {
		t.Fatalf("free worker with dead ctx: %v, %v", w, err)
	}
	p.Release(w)
}

// TestAcquireCtxCancelledWhileWaiting: with every worker checked out,
// AcquireCtx returns the context error and the pool stays usable.
func TestAcquireCtxCancelledWhileWaiting(t *testing.T) {
	p, err := NewPool(1, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	held := p.Acquire()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if w, err := p.AcquireCtx(ctx); err != context.DeadlineExceeded || w != nil {
		t.Fatalf("AcquireCtx on empty pool = %v, %v", w, err)
	}
	p.Release(held)
	w, err := p.AcquireCtx(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	p.Release(w)
}

// TestAcquireCtxContention is the satellite acceptance test: many
// goroutines race AcquireCtx with aggressive timeouts against a small
// pool (run under -race). However the cancellations interleave with
// grants, no worker may be lost or double-released.
func TestAcquireCtxContention(t *testing.T) {
	const workers, clients, rounds = 2, 16, 50
	p, err := NewPool(workers, swConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	var got, missed int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Mix expired, racing-short, and patient contexts.
				timeout := time.Duration(i%3) * 50 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				w, err := p.AcquireCtx(ctx)
				cancel()
				if err != nil {
					atomic.AddInt64(&missed, 1)
					continue
				}
				atomic.AddInt64(&got, 1)
				if w.ID() < 0 || w.ID() >= workers {
					t.Errorf("bogus worker id %d", w.ID())
				}
				// Hold the worker long enough that other clients' short
				// deadlines actually expire while they wait.
				time.Sleep(20 * time.Microsecond)
				p.Release(w)
			}
		}(c)
	}
	wg.Wait()

	if got == 0 || missed == 0 {
		t.Fatalf("contention mix degenerate: got %d, missed %d", got, missed)
	}
	// Every worker must be back and distinct: grab them all.
	if idle := p.Idle(); idle != workers {
		t.Fatalf("pool has %d/%d workers after contention", idle, workers)
	}
	seen := map[int]bool{}
	for i := 0; i < workers; i++ {
		w, err := p.AcquireCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if seen[w.ID()] {
			t.Fatalf("worker %d recovered twice (double release)", w.ID())
		}
		seen[w.ID()] = true
		defer p.Release(w)
	}
}

// TestRunCtxCancelledPartialResult: cancelling a run mid-measured-phase
// returns the partial Result for what completed and leaves the pool
// serviceable.
func TestRunCtxCancelledPartialResult(t *testing.T) {
	p, err := NewPool(2, hwConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The collector sees every measured request, so it doubles as a
	// progress signal: cancel once some requests have actually landed.
	col := obs.NewCollector(0, nil, nil)
	p.SetCollector(col)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for col.Snapshot().Requests < 5 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	const huge = 200000
	res := p.RunCtx(ctx, LoadGenerator{Warmup: 1, Requests: huge, ContextSwitchEvery: 8}, 0)
	if res.Requests <= 0 || res.Requests >= huge {
		t.Fatalf("partial result requests = %d", res.Requests)
	}
	if res.Cycles <= 0 || res.Latency.Count != res.Requests {
		t.Errorf("partial result inconsistent: %+v", res)
	}
	// The pool still serves after a cancelled run.
	w := p.Acquire()
	if page := w.ServeOne(); len(page) == 0 {
		t.Errorf("pool unusable after cancelled run")
	}
	p.Release(w)
}

// TestLatencyStatsSmallSamples pins the nearest-rank percentile math at
// the degenerate sizes benchrec records can produce: with one sample
// every percentile is that sample; with two, p50 is the smaller value
// (rank ceil(0.5*2) = 1) and p95/p99 the larger (rank ceil(1.9) =
// ceil(1.98) = 2).
func TestLatencyStatsSmallSamples(t *testing.T) {
	one := LatencyStatsFrom([]time.Duration{42 * time.Millisecond})
	if one.Count != 1 {
		t.Fatalf("count = %d, want 1", one.Count)
	}
	for name, got := range map[string]time.Duration{
		"mean": one.Mean, "p50": one.P50, "p95": one.P95, "p99": one.P99, "max": one.Max,
	} {
		if got != 42*time.Millisecond {
			t.Errorf("single sample %s = %v, want 42ms", name, got)
		}
	}

	two := LatencyStatsFrom([]time.Duration{20 * time.Millisecond, 10 * time.Millisecond})
	if two.Count != 2 || two.Mean != 15*time.Millisecond || two.Max != 20*time.Millisecond {
		t.Fatalf("two-sample summary = %+v", two)
	}
	if two.P50 != 10*time.Millisecond {
		t.Errorf("two-sample p50 = %v, want the smaller value (nearest rank 1)", two.P50)
	}
	if two.P95 != 20*time.Millisecond || two.P99 != 20*time.Millisecond {
		t.Errorf("two-sample tail = p95 %v, p99 %v; want the larger value", two.P95, two.P99)
	}
}
