// Package workload implements the synthetic equivalents of the paper's
// evaluated applications: WordPress, Drupal, and MediaWiki from the
// oss-performance suite, plus SPECWeb2005-like banking and e-commerce
// workloads for the Fig. 1 contrast. Each application is a deterministic
// request generator that drives the vm.Runtime with the activity mix,
// key-size distribution, SET ratio, allocation-size distribution, and
// content locality the paper reports, attributed to realistic leaf
// function names so the execution profiles have the right (flat) shape.
package workload

import (
	"fmt"
	"math/rand"
)

// Corpus is a deterministic store of post/page content: the unstructured
// textual data (social media updates, blog posts, news articles) the
// applications turn into HTML.
type Corpus struct {
	rng      *rand.Rand
	words    []string
	Posts    [][]byte // article bodies with occasional special characters
	Titles   [][]byte
	Authors  []string
	Comments [][]byte

	// authorBytes and authorURLs are precomputed read-only views of
	// Authors, so the render hot path never re-converts or re-concats
	// them per request. Callers must not mutate the returned slices.
	authorBytes [][]byte
	authorURLs  [][]byte
	// authorVals and authorByteVals are the same authors pre-boxed as
	// interface values: storing a string or []byte into a PHP array
	// through an interface{} parameter otherwise allocates the box on
	// every store.
	authorVals     []any
	authorByteVals []any
}

// NewCorpus builds a corpus of n posts with the given approximate body
// length.
func NewCorpus(seed int64, n, bodyLen int) *Corpus {
	c := &Corpus{rng: rand.New(rand.NewSource(seed))}
	c.words = baseWords()
	for i := 0; i < n; i++ {
		c.Posts = append(c.Posts, c.genText(bodyLen, 0.085))
		c.Titles = append(c.Titles, c.genText(40, 0.02))
		c.Authors = append(c.Authors, fmt.Sprintf("author%c%d", 'a'+i%26, i%37))
		c.Comments = append(c.Comments, c.genText(bodyLen/4, 0.12))
		c.authorBytes = append(c.authorBytes, []byte(c.Authors[i]))
		c.authorURLs = append(c.authorURLs, []byte("https://localhost/?author="+c.Authors[i]))
		c.authorVals = append(c.authorVals, c.Authors[i])
		c.authorByteVals = append(c.authorByteVals, c.authorBytes[i])
	}
	return c
}

func baseWords() []string {
	return []string{
		"the", "server", "request", "content", "page", "update", "database",
		"cache", "template", "module", "theme", "widget", "plugin", "filter",
		"render", "option", "value", "system", "session", "user", "comment",
		"article", "revision", "category", "index", "search", "result",
		"performance", "hardware", "accelerator", "language", "dynamic",
	}
}

// genText produces body text: words separated by spaces with a controlled
// density of special characters (quotes, apostrophes, angle brackets,
// ampersands, newlines) — the characters the Fig. 11 regexps look for.
func (c *Corpus) genText(n int, specialP float64) []byte {
	out := make([]byte, 0, n+16)
	specials := []string{"'", "\"", "<em>", "</em>", "&", "\n", "<a href=x>", "</a>"}
	for len(out) < n {
		if c.rng.Float64() < specialP {
			out = append(out, specials[c.rng.Intn(len(specials))]...)
		}
		out = append(out, c.words[c.rng.Intn(len(c.words))]...)
		out = append(out, ' ')
	}
	return out[:n]
}

// Post returns post i's body (wrapping).
func (c *Corpus) Post(i int) []byte { return c.Posts[i%len(c.Posts)] }

// Title returns post i's title.
func (c *Corpus) Title(i int) []byte { return c.Titles[i%len(c.Titles)] }

// Author returns post i's author name.
func (c *Corpus) Author(i int) string { return c.Authors[i%len(c.Authors)] }

// AuthorBytes returns post i's author name as read-only bytes
// (precomputed; callers must not mutate).
func (c *Corpus) AuthorBytes(i int) []byte { return c.authorBytes[i%len(c.authorBytes)] }

// AuthorVal returns post i's author name pre-boxed as an interface
// value, for storing into arrays without a per-store allocation.
func (c *Corpus) AuthorVal(i int) any { return c.authorVals[i%len(c.authorVals)] }

// AuthorBytesVal is AuthorBytes pre-boxed the same way.
func (c *Corpus) AuthorBytesVal(i int) any { return c.authorByteVals[i%len(c.authorByteVals)] }

// Comment returns comment i.
func (c *Corpus) Comment(i int) []byte { return c.Comments[i%len(c.Comments)] }

// AuthorURL returns the Fig. 13-style URL whose last field changes
// between requests — the content reuse opportunity. The bytes are
// precomputed and read-only.
func (c *Corpus) AuthorURL(i int) []byte {
	return c.authorURLs[i%len(c.authorURLs)]
}

// catalog holds leaf-function name pools per activity so the cost meter
// produces profiles with the paper's flat, many-function shape.
type catalog struct {
	hash  []string
	heap  []string
	str   []string
	regex []string
	other []string
}

// newCatalog builds per-app function name pools. prefix distinguishes
// application code (wp_, drupal_, wf...).
func newCatalog(prefix string, otherFns int) *catalog {
	c := &catalog{
		hash: []string{
			"zend_hash_find", "hash_get_bucket", "array_key_exists",
			prefix + "cache_get", prefix + "option_lookup", "symtab_insert",
			"hphp_array_get", "hphp_array_set", "extract_locals",
		},
		heap: []string{
			"smart_malloc", "smart_free", "string_data_alloc",
			"zval_release", "req_arena_alloc", "object_free",
		},
		str: []string{
			"htmlspecialchars", "string_replace_impl", "strtolower_impl",
			"string_trim", "concat_builder", "nl2br", "addcslashes",
			"string_find", "strtr_impl",
		},
		regex: []string{
			"pcre_exec", "preg_replace_impl", "preg_match_all",
			"regex_cache_lookup",
		},
	}
	verbs := []string{
		"render", "filter", "build", "parse", "load", "init", "format",
		"apply", "check", "resolve", "merge", "emit", "walk", "bind",
	}
	nouns := []string{
		"menu", "node", "block", "field", "view", "form", "token", "path",
		"hook", "entity", "query", "theme", "shortcode", "widget", "sidebar",
		"taxonomy", "route", "alias", "config", "schema", "locale", "feed",
	}
	for i := 0; i < otherFns; i++ {
		v := verbs[i%len(verbs)]
		n := nouns[(i/len(verbs))%len(nouns)]
		c.other = append(c.other, fmt.Sprintf("%s%s_%s_%d", prefix, v, n, i%7))
	}
	return c
}

func pick(pool []string, i int) string { return pool[i%len(pool)] }
