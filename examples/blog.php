<html>
<body>
<?php
function render_post($post) {
	extract($post);
	$safe_title = htmlspecialchars(strtoupper(trim($title)));
	$safe_body = nl2br(htmlspecialchars($body));
	return "<article><h2>" . $safe_title . "</h2><p>" . $safe_body . "</p><em>by " . $author . "</em></article>";
}

$posts = [
	["title" => " hello world ", "author" => "ann", "body" => "first line\nsecond line"],
	["title" => "arrays & maps", "author" => "bob", "body" => "keys \"quoted\" here"],
	["title" => "the end", "author" => "cee", "body" => "short"],
];

echo "<h1>", count($posts), " posts</h1>\n";
foreach ($posts as $i => $post) {
	echo render_post($post), "\n";
}
?>
</body>
</html>
