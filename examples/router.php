<?php
function dispatch($path) {
	$routes = [
		"/" => "home",
		"/about" => "about",
		"/posts" => "post_index",
	];
	if (array_key_exists($path, $routes)) {
		return $routes[$path];
	}
	$parts = explode("/", $path);
	if (count($parts) == 3 && $parts[1] == "posts") {
		$id = intval($parts[2]);
		return $id > 0 ? "post_show(" . $id . ")" : "not_found";
	}
	return "not_found";
}

$requests = ["/", "/about", "/posts", "/posts/42", "/posts/abc", "/admin", "/posts/7/edit"];
$hits = [];
foreach ($requests as $path) {
	$handler = dispatch($path);
	echo $path, " -> ", $handler, "\n";
	$hits[$handler] = isset($hits[$handler]) ? $hits[$handler] + 1 : 1;
}
echo "handlers: ", implode(",", array_keys($hits)), "\n";
echo "not_found: ", $hits["not_found"], "\n";
?>
