<?php
function validate($field, $value) {
	if ($value === null || trim($value) === "") {
		return $field . ": missing";
	}
	if ($field == "email") {
		return preg_match('/@/', $value) ? $field . ": ok" : $field . ": invalid";
	}
	if ($field == "age") {
		$n = intval($value);
		return ($n > 0 && $n < 130) ? $field . ": ok" : $field . ": out of range";
	}
	return $field . ": ok";
}

$input = ["name" => "Ada Lovelace", "email" => "ada(at)example.com", "age" => "208", "note" => "  "];
$fields = ["name", "email", "age", "note", "phone"];
$errors = 0;
foreach ($fields as $f) {
	$v = isset($input[$f]) ? $input[$f] : null;
	$msg = validate($f, $v);
	echo $msg, "\n";
	if (!preg_match('/: ok/', $msg)) {
		$errors++;
	}
}
echo $errors > 0 ? "rejected (" . $errors . " errors)" : "accepted", "\n";
?>
