<?php
function cell($r, $c) {
	$v = $r * $c;
	return $v % 2 == 0 ? "<td class=\"even\">" . $v . "</td>" : "<td>" . $v . "</td>";
}

$n = 6;
echo "<table>\n<tr><th></th>";
for ($c = 1; $c <= $n; $c++) {
	echo "<th>", $c, "</th>";
}
echo "</tr>\n";
$total = 0;
for ($r = 1; $r <= $n; $r++) {
	echo "<tr><th>", $r, "</th>";
	for ($c = 1; $c <= $n; $c++) {
		echo cell($r, $c);
		$total += $r * $c;
	}
	echo "</tr>\n";
}
echo "</table>\n";
echo sprintf("sum=%d avg=%f", $total, $total / ($n * $n)), "\n";
?>
