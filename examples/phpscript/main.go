// Phpscript runs an actual PHP program — the scripted blog page from the
// workload package — through the interpreter on both a software-only and
// a fully accelerated runtime, demonstrating that real script execution
// flows through the paper's accelerators end to end.
package main

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	run := func(feats isa.Features) (*vm.Runtime, []byte) {
		rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
		app := workload.NewBlogScript()
		var page []byte
		for i := 0; i < 12; i++ { // warm the hardware structures
			page = app.ServeRequest(rt)
		}
		rt.Meter().Reset()
		page = app.ServeRequest(rt)
		return rt, page
	}

	swRT, swPage := run(isa.Features{})
	hwRT, hwPage := run(isa.AllAccelerators())

	fmt.Printf("PHP blog script rendered %d bytes (software), %d bytes (accelerated)\n",
		len(swPage), len(hwPage))
	same := strings.ReplaceAll(string(swPage), " ", "") == strings.ReplaceAll(string(hwPage), " ", "")
	fmt.Printf("outputs identical modulo sifting whitespace: %v\n\n", same)

	fmt.Println("first 240 bytes of the page:")
	fmt.Printf("%.240s...\n\n", swPage)

	swC, hwC := swRT.Meter().TotalCycles(), hwRT.Meter().TotalCycles()
	fmt.Printf("cycles per request: software %.0f, accelerated %.0f (%.2fx)\n",
		swC, hwC, swC/hwC)
	for _, c := range sim.Categories() {
		s, h := swRT.Meter().CategoryCycles()[c], hwRT.Meter().CategoryCycles()[c]
		if s == 0 {
			continue
		}
		fmt.Printf("  %-10s %10.0f -> %10.0f\n", c, s, h)
	}

	ht := hwRT.CPU().HT.Stats()
	hm := hwRT.CPU().HM.Stats()
	fmt.Printf("\nhash table: %.1f%% GET hit (%d gets, %d sets)\n", 100*ht.HitRate(), ht.Gets, ht.Sets)
	fmt.Printf("heap manager: %.1f%% malloc hit (%d mallocs)\n", 100*hm.MallocHitRate(), hm.Mallocs)
}
