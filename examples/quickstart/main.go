// Quickstart: build an accelerated PHP runtime, serve one request, and
// inspect where the cycles went.
package main

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	// A runtime with all four accelerators (hash table, heap manager,
	// string accelerator, regexp accelerator) and the prior-work
	// mitigations from the paper's Section 3.
	rt := vm.New(vm.Config{
		Features:    isa.AllAccelerators(),
		Mitigations: sim.AllMitigations(),
	})

	// Serve a WordPress-like page.
	app := workload.NewWordPress(42)
	page := app.ServeRequest(rt)
	fmt.Printf("rendered %d bytes of HTML\n\n", len(page))
	fmt.Printf("first 160 bytes: %.160s...\n\n", page)

	// The meter attributes every micro-op and accelerator cycle to a leaf
	// function and activity category.
	fmt.Print(rt.Meter().Report())

	p := profile.FromMeter(rt.Meter())
	fmt.Printf("\nhottest 8 leaf functions:\n%s", p.Render(8))

	// Accelerator activity for this single request.
	ht := rt.CPU().HT.Stats()
	hm := rt.CPU().HM.Stats()
	fmt.Printf("\nhash table GET hit rate: %.1f%% (%d gets, %d sets)\n",
		100*ht.HitRate(), ht.Gets, ht.Sets)
	fmt.Printf("heap manager malloc hit rate: %.1f%% (%d mallocs)\n",
		100*hm.MallocHitRate(), hm.Mallocs)
}
