// Wikirender demonstrates the regexp accelerator on a MediaWiki-style
// article pipeline: a sieve regexp scans the wikitext once and produces a
// hint vector; the following shadow regexps skip every segment without
// special characters; and the content reuse table jumps repeated URL
// scans straight to the remembered FSM state (Fig. 13).
package main

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

func article() []byte {
	para := "The accelerator processes ordinary prose quickly because most " +
		"segments contain no special characters at all and can be skipped. "
	markup := `A "quoted" claim<ref name=x/> and a <em>styled</em> span. `
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		sb.WriteString(para)
		if i%6 == 5 {
			sb.WriteString(markup)
		}
	}
	return []byte(sb.String())
}

func main() {
	rt := vm.New(vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations()})
	cpu := rt.CPU()
	body := article()

	// The sieve: the first regexp over the content scans everything and
	// emits the hint vector through the string accelerator.
	sieve := rt.MustRegex("wfParse", `<`)
	tags, hv := cpu.RegexSieve("wfParse", sieve, body)
	fmt.Printf("article: %d bytes; sieve '<' found %d tags\n", len(body), len(tags))

	// Shadows: later regexps consult the HV and skip clean segments.
	for _, pattern := range []string{`"[a-z ]*"`, `&`, `(?<=\w)'`} {
		re := rt.MustRegex("wfParse", pattern)
		ms := cpu.RegexShadow("wfParse", re, body, hv)
		fmt.Printf("shadow %-14q found %2d matches\n", pattern, len(ms))
	}
	st := cpu.RA.Stats()
	fmt.Printf("\ncontent sifting skipped %.1f%% of the bytes presented to shadows\n",
		100*float64(st.BytesSkippedSift)/float64(st.BytesPresented))

	// Content reuse: author URLs that differ only in the final field.
	re := rt.MustRegex("wfRoute", `https://[a-z]+/\?author=[a-z0-9]+`)
	for _, author := range []string{"alice", "amara", "ezra", "erin"} {
		url := []byte("https://localhost/?author=" + author)
		end := rt.ScanURL("wfRoute", re, 0xBEEF, url)
		fmt.Printf("scan %-38s accepted prefix %2d bytes\n", url, end)
	}
	st = cpu.RA.Stats()
	fmt.Printf("\nreuse table: %d lookups, %d hits, %d resizes; %d bytes skipped by FSM jumps\n",
		st.ReuseLookups, st.ReuseHits, st.ReuseResizes, st.BytesSkippedReuse)
}
