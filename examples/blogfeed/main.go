// Blogfeed renders a blog feed — the WordPress-style workload the paper
// motivates — on a software-only core and on the accelerated core, and
// reports the per-category speedup the four accelerators deliver.
//
// This is the Fig. 14/15 experiment in miniature, driven directly through
// the public Runtime API rather than the experiment harness.
package main

import (
	"fmt"

	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

// renderFeed builds a small blog feed page: post metadata from hash maps,
// attribute tags with escaped values, a texturize regexp chain over each
// body, and comment formatting.
func renderFeed(rt *vm.Runtime, posts int) []byte {
	rt.BeginRequest()
	ob := rt.NewOutputBuffer("render_feed")
	ob.WriteString("<html><body>\n")

	// Site options: static keys, specialized away by inline caching.
	opts := rt.NewArray("load_options")
	rt.ASet("load_options", opts, hashmap.StrKey("blogname"), []byte("repro blog"), false)
	rt.ASet("load_options", opts, hashmap.StrKey("posts_per_page"), posts, false)
	name, _ := rt.AGet("load_options", opts, hashmap.StrKey("blogname"), false)
	ob.Write(rt.Concat("render_feed", []byte("<h1>"), rt.EscapeHTML("render_feed", name.([]byte)), []byte("</h1>\n")))

	chain, err := rt.NewChain("wptexturize", []vm.ChainStep{
		{Pattern: `(?<=\w)'`, Repl: "&#8217;"}, // curly apostrophe
		{Pattern: `"`, Repl: "&#8221;"},        // curly quote
		{Pattern: "\n", Repl: "<br />"},        // line breaks
		{Pattern: `<`, Repl: "&lt;"},           // stray tags
	})
	if err != nil {
		panic(err)
	}

	for i := 0; i < posts; i++ {
		// Post metadata in a short-lived hash map with dynamic keys.
		meta := rt.NewArray("get_post_meta")
		rt.ASet("get_post_meta", meta, hashmap.StrKey("title"), fmt.Sprintf("Post #%d: the server's \"big\" day", i), true)
		rt.ASet("get_post_meta", meta, hashmap.StrKey("author"), fmt.Sprintf("author%d", i%3), true)
		rt.ASet("get_post_meta", meta, hashmap.StrKey("href"), fmt.Sprintf("/?p=%d", i), true)

		attrs := rt.NewArray("build_link")
		rt.AForeach("get_post_meta", meta, func(k hashmap.Key, v interface{}) bool {
			if k.Str == "href" {
				rt.ASet("build_link", attrs, k, []byte(v.(string)), true)
			}
			return true
		})
		title, _ := rt.AGet("get_post_meta", meta, hashmap.StrKey("title"), true)
		tag := rt.BuildTag("build_link", "a", attrs, []byte(title.(string)))
		ob.Write(tag)
		ob.WriteString("\n")

		// Realistic post text: long runs of ordinary prose with occasional
		// special characters — the texture that makes content sifting pay.
		plain := "The server hums along rendering page after page of perfectly " +
			"ordinary text that the shadow regexps skip entirely without ever " +
			"touching the bytes because their segments carry no special characters. "
		body := []byte(plain + plain + "It's a fine day for \"benchmarks\".\n" +
			plain + plain + plain + "A <tag> appears here. " + plain)
		out, _ := chain.Apply("wptexturize", body)
		ob.Write(out)
		ob.WriteString("\n")

		rt.FreeArray("build_link", attrs)
		rt.FreeArray("get_post_meta", meta)
	}
	ob.WriteString("</body></html>\n")
	return ob.Bytes()
}

func main() {
	const posts = 12
	run := func(feats isa.Features) (*vm.Runtime, []byte) {
		rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations()})
		var page []byte
		for i := 0; i < 20; i++ { // warm the hardware structures
			page = renderFeed(rt, posts)
		}
		rt.Meter().Reset()
		page = renderFeed(rt, posts)
		return rt, page
	}

	swRT, swPage := run(isa.Features{})
	hwRT, hwPage := run(isa.AllAccelerators())

	fmt.Printf("software page: %d bytes, accelerated page: %d bytes\n\n", len(swPage), len(hwPage))

	swCat := swRT.Meter().CategoryCycles()
	hwCat := hwRT.Meter().CategoryCycles()
	fmt.Printf("%-10s %14s %14s %10s\n", "category", "software cyc", "accel cyc", "speedup")
	for _, c := range sim.Categories() {
		if swCat[c] == 0 {
			continue
		}
		fmt.Printf("%-10s %14.0f %14.0f %9.2fx\n", c, swCat[c], hwCat[c], swCat[c]/(hwCat[c]+1))
	}
	fmt.Printf("%-10s %14.0f %14.0f %9.2fx\n", "TOTAL",
		swRT.Meter().TotalCycles(), hwRT.Meter().TotalCycles(),
		swRT.Meter().TotalCycles()/hwRT.Meter().TotalCycles())
}
