<?php
function fib($n) {
	if ($n < 2) {
		return $n;
	}
	return fib($n - 1) + fib($n - 2);
}

$samples = [14, 3, 8, 3, 27, 9, 1, 8];
$sum = 0;
$freq = [];
foreach ($samples as $s) {
	$sum += $s;
	$freq[$s] = isset($freq[$s]) ? $freq[$s] + 1 : 1;
}
echo "n=", count($samples), " sum=", $sum, " min=", min(1, 3, 8, 14, 27), " max=", max(1, 3, 8, 14, 27), "\n";

$dupes = [];
foreach ($freq as $value => $times) {
	if ($times > 1) {
		$dupes[] = $value;
	}
}
echo "dupes: ", implode(",", $dupes), "\n";

$i = 0;
$acc = "";
while ($i < 10) {
	$acc .= fib($i);
	$acc .= " ";
	$i++;
}
echo "fib: ", trim($acc), "\n";
echo "spread=", abs(min(1, 27) - max(1, 27)), " mean=", sprintf("%f", $sum / count($samples)), "\n";
?>
