// Urlrouter demonstrates the hardware hash table on the symbol-table
// patterns the paper highlights (§4.2): the PHP extract() command pours
// key/value pairs into a local symbol table with dynamic key names, the
// foreach iterator preserves insertion order through the RTT even across
// evictions, and short-lived maps live and die entirely in hardware
// without ever touching memory.
package main

import (
	"fmt"

	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	rt := vm.New(vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations()})

	// Route table: query parameters arrive with dynamic key names.
	params := rt.NewArray("parse_query")
	for i, kv := range [][2]string{
		{"page", "about"}, {"author", "gope"}, {"lang", "en"},
		{"utm_source", "newsletter"}, {"sort", "newest"},
	} {
		rt.ASet("parse_query", params, hashmap.StrKey(kv[0]), kv[1], true)
		_ = i
	}

	// extract(): import every pair into the handler's symbol table.
	symtab := rt.NewArray("extract")
	n := rt.Extract("extract", symtab, params)
	fmt.Printf("extract() imported %d variables into the symbol table\n", n)

	// The template reads them back by dynamic name.
	for _, name := range []string{"page", "author", "lang"} {
		v, ok := rt.AGet("render_template", symtab, hashmap.StrKey(name), true)
		fmt.Printf("  $%s = %v (found=%v)\n", name, v, ok)
	}

	// foreach preserves insertion order — the RTT guarantee.
	fmt.Print("\nforeach order: ")
	rt.AForeach("render_template", symtab, func(k hashmap.Key, v interface{}) bool {
		fmt.Printf("%s ", k)
		return true
	})
	fmt.Println()

	// The whole exchange was served by the hardware hash table; the
	// short-lived maps are freed through the RTT without writebacks.
	before := rt.CPU().HT.Stats()
	rt.FreeArray("parse_query", params)
	rt.FreeArray("extract", symtab)
	after := rt.CPU().HT.Stats()

	fmt.Printf("\nhash table: %d GETs (%.0f%% hit), %d SETs, %d writebacks to memory\n",
		after.Gets, 100*after.HitRate(), after.Sets, after.Writebacks)
	fmt.Printf("frees invalidated entries via the RTT (scans: %d)\n", after.FreeScans-before.FreeScans)

	// Category accounting shows how little core time hash work took.
	cc := rt.Meter().CategoryCycles()
	fmt.Printf("hash cycles: %.0f of %.0f total (%.1f%%)\n",
		cc[sim.CatHash], rt.Meter().TotalCycles(), 100*cc[sim.CatHash]/rt.Meter().TotalCycles())
}
