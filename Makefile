# Repro build/test gate. `make check` is the CI entry point: vet plus
# the full test suite under the race detector (the serving layer runs
# request workers on goroutines, so races are first-class failures).

GO ?= go

.PHONY: all build vet test race bench bench-record bench-check docs-check check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if exported identifiers in the operator-facing packages lack doc
# comments — their API is the surface docs/OPERATIONS.md describes —
# and if any phpserve/phprouter HTTP endpoint, CLI flag, or phprouter_*
# metric series is missing from OPERATIONS.md. internal/serve is in the
# list because the router/supervisor/cluster API is what the cluster
# section documents.
docs-check:
	sh scripts/docs_check.sh internal/obs internal/profile internal/cache internal/benchrec internal/serve

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Benchmark trajectory (docs/OPERATIONS.md "Benchmark trajectory").
# bench-record runs the pinned full-scale scenario matrix and appends
# the next BENCH_<n>.json at the repo root; commit the file so the
# trajectory travels with the history. bench-check reruns the matrix
# fresh and fails with a side-by-side table if any gated metric
# regressed past tolerance against the latest committed record.
bench-record:
	$(GO) run ./cmd/loadgen -record

bench-check:
	$(GO) run ./scripts

check: build vet docs-check race

# Full CI gate: everything `check` runs, plus the request-lifecycle
# suite under -race on its own (the drain/shed interleavings deserve an
# explicit gate even though `race` already covers the package) and the
# wall-clock overhead guards. The guards compare wall clocks, which is
# too noisy for the default test run, so they are env-gated and only
# armed here.
ci: check
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 ./internal/cache/
	$(GO) test -race -count=1 ./internal/obs/ ./internal/profile/
	SPAN_OVERHEAD_GUARD=1 $(GO) test -run TestSpanOverheadGuard -count=1 .
	SCHED_OVERHEAD_GUARD=1 $(GO) test -run TestSchedulerOverheadGuard -count=1 .
	CACHE_OVERHEAD_GUARD=1 $(GO) test -run TestCacheOverheadGuard -count=1 .
	BENCH_CHECK_GUARD=1 $(GO) test -run TestBenchCheckGuard -count=1 .
	TIER_DETERMINISM_GUARD=1 $(GO) test -run TestTierDeterminismGuard -count=1 .
	ALLOC_GUARD=1 $(GO) test -run 'TestArenaResetAllocGuard|TestRenderBufferAllocGuard|TestCachedHitAllocGuard' -count=1 .
	ROUTER_OBS_GUARD=1 $(GO) test -run TestRouterObsOverheadGuard -count=1 ./internal/serve/
