# Repro build/test gate. `make check` is the CI entry point: vet plus
# the full test suite under the race detector (the serving layer runs
# request workers on goroutines, so races are first-class failures).

GO ?= go

.PHONY: all build vet test race bench docs-check check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if exported identifiers in the observability package lack doc
# comments — its API is the operator-facing surface (docs/OPERATIONS.md).
docs-check:
	sh scripts/docs_check.sh internal/obs

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

check: build vet docs-check race
