# Repro build/test gate. `make check` is the CI entry point: vet plus
# the full test suite under the race detector (the serving layer runs
# request workers on goroutines, so races are first-class failures).

GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

check: build vet race
