// Command phpsim runs one PHP workload through the simulated runtime and
// prints the cost breakdown: per-category cycles, the hottest leaf
// functions, and accelerator statistics.
//
// Usage:
//
//	phpsim [-app wordpress] [-requests 100] [-warmup 50]
//	       [-accel all|none|hash,heap,string,regex] [-mitigations]
//	       [-profile 20] [-trace out.bin]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "wordpress", "workload: wordpress|drupal|mediawiki|specweb-banking|specweb-ecommerce")
	requests := flag.Int("requests", 100, "measured requests")
	warmup := flag.Int("warmup", 50, "warmup requests (discarded)")
	accel := flag.String("accel", "all", "accelerators: all|none|comma list of hash,heap,string,regex")
	mitig := flag.Bool("mitigations", true, "apply the prior-work mitigations (section 3)")
	topN := flag.Int("profile", 20, "print the hottest N leaf functions")
	traceOut := flag.String("trace", "", "write the operation trace to this file")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	feats, err := parseFeatures(*accel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := vm.Config{Features: feats, TraceCapacity: -1}
	if *traceOut != "" {
		cfg.TraceCapacity = 0
	}
	if *mitig {
		cfg.Mitigations = sim.AllMitigations()
	}
	rt := vm.New(cfg)

	a, err := workload.ByName(*app, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	lg := workload.LoadGenerator{Warmup: *warmup, Requests: *requests, ContextSwitchEvery: 64}
	res := lg.Run(rt, a)

	fmt.Printf("workload: %s  requests: %d  response bytes: %d\n", res.App, res.Requests, res.ResponseBytes)
	fmt.Printf("cycles/request: %.0f   uops/request: %.0f   energy/request: %.2f uJ\n\n",
		res.CyclesPerRequest(), res.Uops/float64(res.Requests), res.EnergyPJ/float64(res.Requests)/1e6)

	fmt.Print(rt.Meter().Report())

	p := profile.FromMeter(rt.Meter())
	fmt.Printf("\nhottest %d leaf functions:\n%s", *topN, p.Render(*topN))

	printAccelStats(rt)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Write(f, rt.Trace().Events()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s\n", len(rt.Trace().Events()), *traceOut)
	}
}

func parseFeatures(s string) (isa.Features, error) {
	switch s {
	case "all":
		return isa.AllAccelerators(), nil
	case "none", "":
		return isa.Features{}, nil
	}
	all := isa.AllAccelerators()
	var f isa.Features
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "hash":
			f.HashTable, f.HTConfig = true, all.HTConfig
		case "heap":
			f.HeapManager, f.HMConfig = true, all.HMConfig
		case "string":
			f.StringAccel, f.SAConfig = true, all.SAConfig
		case "regex":
			f.RegexAccel, f.RAConfig = true, all.RAConfig
		default:
			return f, fmt.Errorf("phpsim: unknown accelerator %q", part)
		}
	}
	return f, nil
}

func printAccelStats(rt *vm.Runtime) {
	cpu := rt.CPU()
	if cpu.HT != nil {
		st := cpu.HT.Stats()
		fmt.Printf("\nhash table: gets=%d hit=%.1f%% sets=%d evict(dirty)=%d writebacks=%d rtt-scans=%d\n",
			st.Gets, 100*st.HitRate(), st.Sets, st.EvictDirty, st.Writebacks, st.FreeScans)
	}
	if cpu.HM != nil {
		st := cpu.HM.Stats()
		fmt.Printf("heap manager: mallocs=%d hit=%.1f%% frees=%d overflows=%d prefetches=%d\n",
			st.Mallocs, 100*st.MallocHitRate(), st.Frees, st.Overflows, st.Prefetches)
	}
	if cpu.SA != nil {
		st := cpu.SA.Stats()
		fmt.Printf("string accel: ops=%d blocks=%d bytes=%d bypasses=%d gated-cells=%.1f%%\n",
			st.Ops, st.Blocks, st.Bytes, st.Bypasses,
			100*float64(st.GatedCells)/float64(st.GatedCells+st.ActiveCells+1))
	}
	if cpu.RA != nil {
		st := cpu.RA.Stats()
		fmt.Printf("regex accel: shadows=%d sift-skip=%.1f%% reuse-hits=%d/%d reuse-skip=%dB\n",
			st.ShadowScans,
			100*float64(st.BytesSkippedSift)/float64(st.BytesPresented+1),
			st.ReuseHits, st.ReuseLookups, st.BytesSkippedReuse)
	}
}
