// Command loadgen drives the oss-performance-style load generator over
// one or more workloads and compares configurations side by side:
// baseline HHVM, prior-work mitigations, and the full accelerated core.
//
// Usage:
//
//	loadgen [-apps wordpress,drupal,mediawiki] [-requests 200] [-warmup 300]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	apps := flag.String("apps", "wordpress,drupal,mediawiki", "comma-separated workloads")
	requests := flag.Int("requests", 200, "measured requests per run")
	warmup := flag.Int("warmup", 300, "warmup requests (oss-performance default)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	type config struct {
		name string
		mit  bool
		acc  bool
	}
	configs := []config{
		{"baseline", false, false},
		{"mitigated", true, false},
		{"accelerated", true, true},
	}

	fmt.Printf("%-12s %-12s %16s %14s %14s %12s\n",
		"workload", "config", "cycles/request", "uops/request", "energy uJ/req", "norm.time")
	for _, appName := range strings.Split(*apps, ",") {
		appName = strings.TrimSpace(appName)
		var baseCycles float64
		for _, c := range configs {
			cfg := vm.Config{TraceCapacity: -1}
			if c.mit {
				cfg.Mitigations = sim.AllMitigations()
			}
			if c.acc {
				cfg.Features = isa.AllAccelerators()
			}
			rt := vm.New(cfg)
			app, err := workload.ByName(appName, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			lg := workload.LoadGenerator{Warmup: *warmup, Requests: *requests, ContextSwitchEvery: 64}
			res := lg.Run(rt, app)
			if c.name == "baseline" {
				baseCycles = res.Cycles
			}
			fmt.Printf("%-12s %-12s %16.0f %14.0f %14.2f %11.2f%%\n",
				appName, c.name,
				res.CyclesPerRequest(),
				res.Uops/float64(res.Requests),
				res.EnergyPJ/float64(res.Requests)/1e6,
				100*res.Cycles/baseCycles)
		}
	}
}
