// Command loadgen drives the oss-performance-style load generator over
// one or more workloads and compares configurations side by side:
// baseline HHVM, prior-work mitigations, and the full accelerated core.
// With -workers N it serves the measured phase from a pool of N request
// workers in parallel (one runtime per worker, oss-performance style) and
// reports aggregate throughput and tail latency alongside the cycle table.
//
// Usage:
//
//	loadgen [-apps wordpress,drupal,mediawiki] [-requests 200] [-warmup 300]
//	        [-workers 1] [-concurrency 0] [-queue -1] [-timeout 0] [-breakdown]
//	        [-cache 0] [-cachettl 0] [-cacheshards 16] [-pages 512] [-zipf 1.0]
//	        [-traceout file] [-tracesample 0.05]
//
// With -breakdown (the default) each row is followed by the per-category
// cycle attribution — the paper's four accelerated activities plus the
// abstraction/kernel/other remainder — so a run shows *where* the cycles
// went, not just how many there were (the Fig. 5 view of the run), plus
// the Fig. 1 flat-profile headline (hottest function share, functions
// needed for 65% of cycles).
//
// With -queue >= 0 the measured phase runs through the serve.Scheduler
// request lifecycle instead of the direct pool loop: -concurrency
// closed-loop clients (default: one per worker) submit through a
// bounded admission queue with an optional per-request -timeout, and
// each row gains a "sched:" line reporting shed/timeout counts and
// queue-wait percentiles — overload is measured, not silent. Set
// -concurrency above workers+queue to force shedding on purpose.
//
// With -cache N the measured phase routes every request through a
// response cache of N entries in front of the scheduler (cache mode
// implies scheduler mode; -queue defaults to 64 if unset): each request
// draws a page identity from a Zipf(-zipf) distribution over -pages
// pages, hits are served without a worker, and each row gains a
// "cache:" line reporting the hit ratio and the hit-vs-miss latency
// split. The same seed drives the same page sequence for every config
// row, so hit ratios are reproducible and comparable.
//
// With -cluster N the measured phase runs the in-process FPM-style
// cluster instead: N backend stacks (pool + scheduler + response cache)
// behind a consistent-hash ring, each request routed to the backend
// that owns its page key — the same topology phprouter builds out of
// real processes. Cluster mode implies the cache (capacity defaults to
// 128 when -cache is unset); -dbwait adds a simulated per-render
// database stall held FPM-style on the worker, which is what lets N
// backends overlap I/O and scale on few cores. Each row reports cluster
// throughput, aggregate hit ratio, and the per-backend split.
//
// With -record the normal comparison run is replaced by the benchmark
// trajectory recorder: the pinned benchrec scenario matrix (direct pool
// loop, scheduler, cached Zipf, accelerator on/off — all reusing the
// same serve.RunLoad plumbing as scheduler mode) runs at -recordscale
// and one schema-versioned record is written to the next free
// BENCH_<n>.json under -recorddir. `make bench-record` is this mode.
//
// Ctrl-C (SIGINT) stops admission, waits for in-flight requests, and
// prints the partial result for whatever completed instead of
// discarding the run.
//
// With -traceout the run additionally samples request span trees at
// -tracesample and writes the last runs' trees as Chrome trace_event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchrec"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// validateFlags fails fast on out-of-range flag values instead of
// silently clamping or panicking mid-run.
func validateFlags(requests, warmup, workers, concurrency, queue int, tracesample float64, timeout time.Duration) error {
	if requests <= 0 {
		return fmt.Errorf("loadgen: -requests must be positive, got %d", requests)
	}
	if warmup < 0 {
		return fmt.Errorf("loadgen: -warmup must be >= 0, got %d", warmup)
	}
	if workers <= 0 {
		return fmt.Errorf("loadgen: -workers must be positive, got %d", workers)
	}
	if concurrency < 0 {
		return fmt.Errorf("loadgen: -concurrency must be >= 0, got %d", concurrency)
	}
	if queue < -1 {
		return fmt.Errorf("loadgen: -queue must be >= -1, got %d", queue)
	}
	if tracesample < 0 || tracesample > 1 {
		return fmt.Errorf("loadgen: -tracesample must be in [0,1], got %g", tracesample)
	}
	if timeout < 0 {
		return fmt.Errorf("loadgen: -timeout must be >= 0, got %v", timeout)
	}
	return nil
}

// validateCacheFlags checks the -cache flag family; the knobs only
// matter (and are only validated) when the cache is enabled.
func validateCacheFlags(capacity, shards, pages int, ttl time.Duration, zipf float64) error {
	if capacity < 0 {
		return fmt.Errorf("loadgen: -cache must be >= 0, got %d", capacity)
	}
	if capacity == 0 {
		return nil
	}
	if shards <= 0 {
		return fmt.Errorf("loadgen: -cacheshards must be positive, got %d", shards)
	}
	if ttl < 0 {
		return fmt.Errorf("loadgen: -cachettl must be >= 0, got %v", ttl)
	}
	if pages <= 0 {
		return fmt.Errorf("loadgen: -pages must be positive with -cache, got %d", pages)
	}
	if zipf <= 0 {
		return fmt.Errorf("loadgen: -zipf must be positive with -cache, got %g", zipf)
	}
	return nil
}

func main() {
	apps := flag.String("apps", "wordpress,drupal,mediawiki", "comma-separated workloads")
	requests := flag.Int("requests", 200, "measured requests per run (total across workers)")
	warmup := flag.Int("warmup", 300, "warmup requests per worker (oss-performance default)")
	seed := flag.Int64("seed", 1, "workload seed (worker i uses seed+i)")
	workers := flag.Int("workers", 1, "request workers (independent runtimes)")
	concurrency := flag.Int("concurrency", 0, "direct mode: workers executing at once; scheduler mode: closed-loop clients (0 = one per worker)")
	queue := flag.Int("queue", -1, "run the measured phase through the request scheduler with this admission queue depth (-1 = direct pool loop)")
	timeout := flag.Duration("timeout", 0, "scheduler mode: per-request deadline from admission (0 disables)")
	breakdown := flag.Bool("breakdown", true, "print the per-category cycle breakdown and Fig. 1 profile line under each row")
	traceOut := flag.String("traceout", "", "write sampled request span trees as Chrome trace_event JSON to this file")
	traceSample := flag.Float64("tracesample", 0.05, "request sampling rate for -traceout trees")
	cacheCap := flag.Int("cache", 0, "route the measured phase through a response cache with this capacity (0 disables; implies scheduler mode)")
	cacheTTL := flag.Duration("cachettl", 0, "response cache entry time-to-live (0 never expires)")
	cacheShards := flag.Int("cacheshards", cache.DefaultShards, "response cache shard count (rounded up to a power of two)")
	pages := flag.Int("pages", 512, "distinct page identities requests draw from in cache mode")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent for page identities in cache mode")
	cluster := flag.Int("cluster", 0, "run the measured phase on an in-process N-backend cluster behind a cache-affinity ring (0 disables; implies -cache)")
	dbwait := flag.Duration("dbwait", 0, "cluster mode: simulated per-render database stall held on the worker (0 disables)")
	record := flag.Bool("record", false, "run the pinned benchmark matrix and append a BENCH_<n>.json trajectory record instead of the comparison table")
	recordDir := flag.String("recorddir", ".", "directory trajectory records are read from and written to in -record mode")
	recordScale := flag.String("recordscale", "full", "matrix scale in -record mode: full (paper methodology) or quick (CI-sized)")
	flag.Parse()

	if *record {
		if *recordScale != "full" && *recordScale != "quick" {
			fmt.Fprintf(os.Stderr, "loadgen: -recordscale %q: want full or quick\n", *recordScale)
			flag.Usage()
			os.Exit(2)
		}
		if err := runRecord(*recordDir, *recordScale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := validateFlags(*requests, *warmup, *workers, *concurrency, *queue, *traceSample, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateCacheFlags(*cacheCap, *cacheShards, *pages, *cacheTTL, *zipf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateClusterFlags(*cluster, *dbwait); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if *cacheCap > 0 && *queue < 0 {
		// Cache mode rides the scheduler (DoCached); give it the server's
		// default admission queue when the user didn't pick one.
		*queue = 64
	}

	if *cluster > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := runClusterCompare(ctx, clusterParams{
			apps: *apps, backends: *cluster, workers: *workers,
			requests: *requests, warmup: *warmup, seed: *seed,
			queue: *queue, timeout: *timeout,
			capacity: *cacheCap, pages: *pages, zipf: *zipf,
			dbwait: *dbwait, breakdown: *breakdown,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// SIGINT stops admission: the running phase finishes its in-flight
	// requests, the partial result is printed, and no further
	// workload/config rows start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type config struct {
		name string
		mit  bool
		acc  bool
	}
	configs := []config{
		{"baseline", false, false},
		{"mitigated", true, false},
		{"accelerated", true, true},
	}

	// With -traceout, a collector + tree ring samples span trees across
	// every run; the retained trees are exported once at the end.
	var treeRing *obs.TreeRing
	if *traceOut != "" {
		treeRing = obs.NewTreeRing(256)
	}

	fmt.Printf("%-12s %-12s %16s %14s %14s %10s %10s %9s %9s %9s\n",
		"workload", "config", "cycles/request", "uops/request", "energy uJ/req",
		"norm.time", "req/s", "p50", "p95", "p99")
	interrupted := false
loop:
	for _, appName := range strings.Split(*apps, ",") {
		appName = strings.TrimSpace(appName)
		var baseCycles float64
		for _, c := range configs {
			if ctx.Err() != nil {
				interrupted = true
				break loop
			}
			cfg := vm.Config{TraceCapacity: -1}
			if c.mit {
				cfg.Mitigations = sim.AllMitigations()
			}
			if c.acc {
				cfg.Features = isa.AllAccelerators()
			}
			lg := workload.LoadGenerator{Warmup: *warmup, Requests: *requests, ContextSwitchEvery: 64}
			// Cache mode needs worker-independent page identity, so all
			// workers share one seed; otherwise keep per-worker seeds.
			newPool := workload.NewPool
			if *cacheCap > 0 {
				newPool = workload.NewPoolSharedSeed
			}
			pool, err := newPool(*workers, cfg, appName, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			var col *obs.Collector
			if treeRing != nil {
				col = obs.NewCollector(*traceSample, nil, nil)
				col.SetTreeRing(treeRing)
				pool.SetCollector(col)
			}
			var res workload.Result
			var ls serve.LoadStats
			var rc *cache.Cache
			var memBefore, memAfter runtime.MemStats
			if *queue >= 0 {
				// Scheduler mode: warm directly, then drive the measured
				// phase through the full request lifecycle.
				pool.RunCtx(ctx, workload.LoadGenerator{Warmup: lg.Warmup, ContextSwitchEvery: lg.ContextSwitchEvery}, 0)
				sched := serve.NewScheduler(pool, serve.Config{QueueDepth: *queue, Timeout: *timeout})
				opts := serve.LoadOptions{
					Requests:       *requests,
					Clients:        *concurrency,
					CtxSwitchEvery: lg.ContextSwitchEvery,
					Collector:      col,
					// Explicit source: error samples carry greppable
					// request IDs even when tracing is off.
					IDs: obs.NewIDSource(),
				}
				if *cacheCap > 0 {
					// Fresh cache and page sequence per row, same seed
					// everywhere: hit ratios are reproducible and every
					// config row replays the identical request stream.
					rc = cache.New(cache.Config{Capacity: *cacheCap, Shards: *cacheShards, TTL: *cacheTTL})
					keys, kerr := workload.NewZipfKeys(*seed, *zipf, *pages)
					if kerr != nil {
						fmt.Fprintln(os.Stderr, kerr)
						os.Exit(2)
					}
					opts.Cache = rc
					opts.PageKey = keys.Next
				}
				// Bracket only the measured phase with GC'd MemStats reads
				// so the breakdown's memory line reports steady-state Go
				// allocations per request, not warmup or setup churn.
				runtime.GC()
				runtime.ReadMemStats(&memBefore)
				ls = serve.RunLoad(ctx, sched, opts)
				runtime.GC()
				runtime.ReadMemStats(&memAfter)
				res = pool.GatherResult(ls.Wall)
			} else {
				// Split warmup from the measured phase (RunCtx resets
				// between them anyway) so the memory line brackets only
				// steady-state requests.
				pool.RunCtx(ctx, workload.LoadGenerator{Warmup: lg.Warmup, ContextSwitchEvery: lg.ContextSwitchEvery}, 0)
				runtime.GC()
				runtime.ReadMemStats(&memBefore)
				res = pool.RunCtx(ctx, workload.LoadGenerator{Requests: lg.Requests, ContextSwitchEvery: lg.ContextSwitchEvery}, *concurrency)
				runtime.GC()
				runtime.ReadMemStats(&memAfter)
			}
			if ctx.Err() != nil {
				interrupted = true
			}
			if c.name == "baseline" {
				baseCycles = res.Cycles
			}
			norm := "n/a"
			if baseCycles > 0 && res.Cycles > 0 {
				norm = fmt.Sprintf("%.2f%%", 100*res.Cycles/baseCycles)
			}
			if res.Requests == 0 {
				fmt.Printf("%-12s %-12s  (no requests completed)\n", appName, c.name)
				continue
			}
			fmt.Printf("%-12s %-12s %16.0f %14.0f %14.2f %10s %10.0f %9s %9s %9s\n",
				appName, c.name,
				res.CyclesPerRequest(),
				res.Uops/float64(res.Requests),
				res.EnergyPJ/float64(res.Requests)/1e6,
				norm,
				res.Throughput(),
				fmtLatency(res.Latency.P50),
				fmtLatency(res.Latency.P95),
				fmtLatency(res.Latency.P99))
			if *queue >= 0 {
				fmt.Printf("  %-10s %s\n", "", schedLine(ls))
				if line := errorLine(ls); line != "" {
					fmt.Printf("  %-10s %s\n", "", line)
				}
			}
			if rc != nil {
				fmt.Printf("  %-10s %s\n", "", cacheLine(ls, rc))
			}
			if *breakdown {
				fmt.Printf("  %-10s %s\n", "", breakdownLine(res))
				fmt.Printf("  %-10s %s\n", "", memLine(res, memBefore, memAfter))
				fmt.Printf("  %-10s %s\n", "", fig1Line(pool))
			}
		}
	}
	if interrupted {
		fmt.Println("loadgen: interrupted — partial results above cover requests that completed before Ctrl-C")
	}

	if treeRing != nil {
		if err := writeTraceFile(*traceOut, treeRing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d span trees to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			len(treeRing.Last(0)), *traceOut)
	}
}

// validateClusterFlags checks the -cluster flag family.
func validateClusterFlags(cluster int, dbwait time.Duration) error {
	if cluster < 0 {
		return fmt.Errorf("loadgen: -cluster must be >= 0, got %d", cluster)
	}
	if dbwait < 0 {
		return fmt.Errorf("loadgen: -dbwait must be >= 0, got %v", dbwait)
	}
	if dbwait > 0 && cluster == 0 {
		return fmt.Errorf("loadgen: -dbwait requires -cluster")
	}
	return nil
}

// clusterParams bundles the -cluster mode inputs.
type clusterParams struct {
	apps              string
	backends, workers int
	requests, warmup  int
	seed              int64
	queue             int
	timeout           time.Duration
	capacity          int
	pages             int
	zipf              float64
	dbwait            time.Duration
	breakdown         bool
}

// runClusterCompare is -cluster mode: for each workload and config row,
// build an in-process cluster, warm every backend, replay the shared
// Zipf stream partitioned by ring owner, and report cluster throughput
// with the per-backend split.
func runClusterCompare(ctx context.Context, p clusterParams) error {
	capacity := p.capacity
	if capacity == 0 {
		capacity = 128 // cluster implies the cache; server default budget
	}
	queue := p.queue
	if queue < 0 {
		queue = 64
	}
	type config struct {
		name string
		mit  bool
		acc  bool
	}
	configs := []config{
		{"baseline", false, false},
		{"mitigated", true, false},
		{"accelerated", true, true},
	}
	fmt.Printf("cluster: %d backends x %d workers, cache %d total, %d pages zipf %.2f, dbwait %v\n",
		p.backends, p.workers, capacity, p.pages, p.zipf, p.dbwait)
	fmt.Printf("%-12s %-12s %10s %10s %9s %9s %9s %16s\n",
		"workload", "config", "req/s", "hit ratio", "p50", "p95", "p99", "sim cycles/req")
	for _, appName := range strings.Split(p.apps, ",") {
		appName = strings.TrimSpace(appName)
		for _, c := range configs {
			if ctx.Err() != nil {
				fmt.Println("loadgen: interrupted")
				return nil
			}
			cfg := vm.Config{TraceCapacity: -1}
			if c.mit {
				cfg.Mitigations = sim.AllMitigations()
			}
			if c.acc {
				cfg.Features = isa.AllAccelerators()
			}
			cl, err := serve.NewCluster(serve.ClusterOptions{
				Backends:          p.backends,
				WorkersPerBackend: p.workers,
				Config:            cfg,
				App:               appName,
				Seed:              p.seed,
				QueueDepth:        queue,
				Timeout:           p.timeout,
				CacheCapacity:     capacity,
				Pages:             p.pages,
				ZipfS:             p.zipf,
				DBWait:            p.dbwait,
				RingReplicas:      512,
			})
			if err != nil {
				return err
			}
			cl.Warm(p.warmup)
			cs, err := cl.RunZipf(ctx, p.requests)
			if err != nil {
				return err
			}
			agg := cs.Aggregate
			if agg.Served == 0 {
				fmt.Printf("%-12s %-12s  (no requests completed)\n", appName, c.name)
				continue
			}
			mt := cl.MergedMeter()
			fmt.Printf("%-12s %-12s %10.0f %10.3f %9s %9s %9s %16.0f\n",
				appName, c.name,
				float64(agg.Served)/agg.Wall.Seconds(),
				agg.CacheHitRatio(),
				fmtLatency(agg.Latency.P50), fmtLatency(agg.Latency.P95), fmtLatency(agg.Latency.P99),
				mt.CategoryCyclesVec().Total()/float64(agg.Served))
			if p.breakdown {
				var b strings.Builder
				b.WriteString("backends:")
				for _, pb := range cs.PerBackend {
					fmt.Fprintf(&b, "  [%s] %d reqs %d pages hit %.3f",
						pb.ID, pb.Load.Served, pb.Pages, pb.Load.CacheHitRatio())
				}
				fmt.Printf("  %-10s %s\n", "", b.String())
			}
		}
	}
	return nil
}

// runRecord is -record mode: run the pinned matrix and append the next
// trajectory record. Sequence numbers are monotonic — the new record is
// LatestSeq+1 and Write refuses to overwrite.
func runRecord(dir, scale string, seed int64) error {
	latest, err := benchrec.LatestSeq(dir)
	if err != nil {
		return err
	}
	fmt.Printf("recording benchmark matrix (scale %s, seed %d)...\n", scale, seed)
	// Same 3-trial metric-wise best bench-check uses, so the committed
	// baseline and every future fresh side estimate the same statistic.
	rec, err := benchrec.RunMatrix(benchrec.Options{Scale: scale, Seed: seed, Trials: 5})
	if err != nil {
		return err
	}
	rec.Seq = latest + 1
	path, err := benchrec.Write(dir, rec)
	if err != nil {
		return err
	}
	for _, sc := range rec.Scenarios {
		fmt.Printf("  %-10s %8.0f req/s  p99 %8.0fus  %10.0f sim cycles/req  hit ratio %.3f\n",
			sc.Name, sc.ReqPerSec, sc.P99US, sc.SimCyclesPerReq, sc.CacheHitRatio)
	}
	fmt.Printf("wrote %s (seq %d)\n", path, rec.Seq)
	return nil
}

// schedLine renders one scheduler-mode run's lifecycle outcomes: how
// much was shed and why, and what the admission queue cost the requests
// that made it through.
func schedLine(ls serve.LoadStats) string {
	return fmt.Sprintf("sched: served %d/%d, shed %d (overload %d, timeout %d, canceled %d, draining %d), queue-wait p50 %s p95 %s p99 %s",
		ls.Served, ls.Submitted, ls.Shed(), ls.ShedOverload, ls.ShedDeadline, ls.ShedCanceled, ls.ShedDraining,
		fmtLatency(ls.QueueWait.P50), fmtLatency(ls.QueueWait.P95), fmtLatency(ls.QueueWait.P99))
}

// errorLine names a sample of failed submissions by correlation ID, so
// an operator can grep the run's access log (or a cluster's logs) for
// exactly those requests. Empty when nothing failed.
func errorLine(ls serve.LoadStats) string {
	if len(ls.ErrorSamples) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("errors (sampled ids):")
	for _, es := range ls.ErrorSamples {
		fmt.Fprintf(&b, "  %s=%v", es.ID, es.Err)
	}
	return b.String()
}

// cacheLine renders one cache-mode run's outcomes: the hit ratio, the
// outcome counts, and the latency split that shows what a hit buys —
// cached answers skip both the queue and the render.
func cacheLine(ls serve.LoadStats, rc *cache.Cache) string {
	cs := rc.Stats()
	return fmt.Sprintf("cache: hit ratio %.3f (%d hits, %d misses, %d coalesced, %d evictions), hit p50 %s p95 %s vs miss p50 %s p95 %s",
		ls.CacheHitRatio(), ls.CacheHits, ls.CacheMisses, ls.CacheCoalesced, cs.Evictions,
		fmtLatency(ls.HitLatency.P50), fmtLatency(ls.HitLatency.P95),
		fmtLatency(ls.MissLatency.P50), fmtLatency(ls.MissLatency.P95))
}

// fig1Line renders the run's flat-profile headline — the paper's Fig. 1
// numbers (hottest-function share, functions covering 65% of cycles) —
// from the pool's merged meter.
func fig1Line(pool *workload.Pool) string {
	p := profile.FromMeter(pool.MergedMeter())
	hottest := "-"
	if p.NumFunctions() > 0 {
		hottest = p.Entries[0].Name
	}
	return fmt.Sprintf("fig1: hottest %s %.1f%%, %d functions for 65%% of cycles (%d total)",
		hottest, 100*p.HottestFrac(), p.FuncsForFrac(0.65), p.NumFunctions())
}

// writeTraceFile exports the retained span trees as trace_event JSON.
func writeTraceFile(path string, ring *obs.TreeRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(f, ring.Last(0)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// breakdownLine renders the per-category cycle shares of one run,
// skipping categories the configuration eliminated (e.g. refcount under
// hardware reference counting).
func breakdownLine(res workload.Result) string {
	var b strings.Builder
	b.WriteString("breakdown:")
	for _, c := range sim.Categories() {
		share := res.CategoryShare(c)
		if share == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s %.1f%%", c, 100*share)
	}
	return b.String()
}

// memLine renders the measured phase's Go-heap allocation rate — the
// operational check on the arena-backed serve path (near zero in steady
// state). Deltas come from GC'd MemStats reads bracketing the phase.
func memLine(res workload.Result, before, after runtime.MemStats) string {
	if res.Requests == 0 {
		return "memory: n/a"
	}
	n := float64(res.Requests)
	return fmt.Sprintf("memory: %.2f allocs/req, %.0f B/req heap",
		float64(after.Mallocs-before.Mallocs)/n,
		float64(after.TotalAlloc-before.TotalAlloc)/n)
}

// fmtLatency renders a latency compactly (µs below 10ms, ms above).
func fmtLatency(d time.Duration) string {
	if d < 10*time.Millisecond {
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
