// Command loadgen drives the oss-performance-style load generator over
// one or more workloads and compares configurations side by side:
// baseline HHVM, prior-work mitigations, and the full accelerated core.
// With -workers N it serves the measured phase from a pool of N request
// workers in parallel (one runtime per worker, oss-performance style) and
// reports aggregate throughput and tail latency alongside the cycle table.
//
// Usage:
//
//	loadgen [-apps wordpress,drupal,mediawiki] [-requests 200] [-warmup 300]
//	        [-workers 1] [-concurrency 0] [-breakdown]
//	        [-traceout file] [-tracesample 0.05]
//
// With -breakdown (the default) each row is followed by the per-category
// cycle attribution — the paper's four accelerated activities plus the
// abstraction/kernel/other remainder — so a run shows *where* the cycles
// went, not just how many there were (the Fig. 5 view of the run), plus
// the Fig. 1 flat-profile headline (hottest function share, functions
// needed for 65% of cycles).
//
// With -traceout the run additionally samples request span trees at
// -tracesample and writes the last runs' trees as Chrome trace_event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	apps := flag.String("apps", "wordpress,drupal,mediawiki", "comma-separated workloads")
	requests := flag.Int("requests", 200, "measured requests per run (total across workers)")
	warmup := flag.Int("warmup", 300, "warmup requests per worker (oss-performance default)")
	seed := flag.Int64("seed", 1, "workload seed (worker i uses seed+i)")
	workers := flag.Int("workers", 1, "request workers (independent runtimes)")
	concurrency := flag.Int("concurrency", 0, "workers executing at once (0 = all)")
	breakdown := flag.Bool("breakdown", true, "print the per-category cycle breakdown and Fig. 1 profile line under each row")
	traceOut := flag.String("traceout", "", "write sampled request span trees as Chrome trace_event JSON to this file")
	traceSample := flag.Float64("tracesample", 0.05, "request sampling rate for -traceout trees")
	flag.Parse()

	if *requests <= 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -requests must be positive, got %d\n", *requests)
		flag.Usage()
		os.Exit(2)
	}
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -workers must be positive, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	type config struct {
		name string
		mit  bool
		acc  bool
	}
	configs := []config{
		{"baseline", false, false},
		{"mitigated", true, false},
		{"accelerated", true, true},
	}

	// With -traceout, a collector + tree ring samples span trees across
	// every run; the retained trees are exported once at the end.
	var treeRing *obs.TreeRing
	if *traceOut != "" {
		treeRing = obs.NewTreeRing(256)
	}

	fmt.Printf("%-12s %-12s %16s %14s %14s %10s %10s %9s %9s %9s\n",
		"workload", "config", "cycles/request", "uops/request", "energy uJ/req",
		"norm.time", "req/s", "p50", "p95", "p99")
	for _, appName := range strings.Split(*apps, ",") {
		appName = strings.TrimSpace(appName)
		var baseCycles float64
		for _, c := range configs {
			cfg := vm.Config{TraceCapacity: -1}
			if c.mit {
				cfg.Mitigations = sim.AllMitigations()
			}
			if c.acc {
				cfg.Features = isa.AllAccelerators()
			}
			lg := workload.LoadGenerator{Warmup: *warmup, Requests: *requests, ContextSwitchEvery: 64}
			pool, err := workload.NewPool(*workers, cfg, appName, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if treeRing != nil {
				col := obs.NewCollector(*traceSample, nil, nil)
				col.SetTreeRing(treeRing)
				pool.SetCollector(col)
			}
			res := pool.Run(lg, *concurrency)
			if c.name == "baseline" {
				baseCycles = res.Cycles
			}
			norm := "n/a"
			if baseCycles > 0 {
				norm = fmt.Sprintf("%.2f%%", 100*res.Cycles/baseCycles)
			}
			fmt.Printf("%-12s %-12s %16.0f %14.0f %14.2f %10s %10.0f %9s %9s %9s\n",
				appName, c.name,
				res.CyclesPerRequest(),
				res.Uops/float64(res.Requests),
				res.EnergyPJ/float64(res.Requests)/1e6,
				norm,
				res.Throughput(),
				fmtLatency(res.Latency.P50),
				fmtLatency(res.Latency.P95),
				fmtLatency(res.Latency.P99))
			if *breakdown {
				fmt.Printf("  %-10s %s\n", "", breakdownLine(res))
				fmt.Printf("  %-10s %s\n", "", fig1Line(pool))
			}
		}
	}

	if treeRing != nil {
		if err := writeTraceFile(*traceOut, treeRing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d span trees to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			len(treeRing.Last(0)), *traceOut)
	}
}

// fig1Line renders the run's flat-profile headline — the paper's Fig. 1
// numbers (hottest-function share, functions covering 65% of cycles) —
// from the pool's merged meter.
func fig1Line(pool *workload.Pool) string {
	p := profile.FromMeter(pool.MergedMeter())
	hottest := "-"
	if p.NumFunctions() > 0 {
		hottest = p.Entries[0].Name
	}
	return fmt.Sprintf("fig1: hottest %s %.1f%%, %d functions for 65%% of cycles (%d total)",
		hottest, 100*p.HottestFrac(), p.FuncsForFrac(0.65), p.NumFunctions())
}

// writeTraceFile exports the retained span trees as trace_event JSON.
func writeTraceFile(path string, ring *obs.TreeRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(f, ring.Last(0)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// breakdownLine renders the per-category cycle shares of one run,
// skipping categories the configuration eliminated (e.g. refcount under
// hardware reference counting).
func breakdownLine(res workload.Result) string {
	var b strings.Builder
	b.WriteString("breakdown:")
	for _, c := range sim.Categories() {
		share := res.CategoryShare(c)
		if share == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s %.1f%%", c, 100*share)
	}
	return b.String()
}

// fmtLatency renders a latency compactly (µs below 10ms, ms above).
func fmtLatency(d time.Duration) string {
	if d < 10*time.Millisecond {
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
