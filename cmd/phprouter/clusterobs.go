// Cluster observability plane: the router-side halves of request-ID
// propagation (serve.Router mints and stitches; this file exposes the
// results), the /tracez | /clusterz | /eventz endpoints, and the
// cluster-level gauge block on /metrics built from fleet scrapes.
package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// fleetScrapeTTL coalesces fleet scrapes: /metrics and /clusterz hits
// within the window share one result instead of re-polling every
// backend (a Prometheus scrape of the router must not multiply into a
// scrape storm against the fleet).
const fleetScrapeTTL = time.Second

// fleet returns a fleet scrape no older than fleetScrapeTTL, running a
// fresh one (bounded by -scrapetimeout per pass) when the cache is
// stale.
func (rt *router) fleet(ctx context.Context) serve.FleetScrape {
	rt.scrapeMu.Lock()
	defer rt.scrapeMu.Unlock()
	if rt.lastScrape != nil && time.Since(rt.lastScrape.Time) < fleetScrapeTTL {
		return *rt.lastScrape
	}
	sctx, cancel := context.WithTimeout(ctx, rt.scrapeTO)
	defer cancel()
	fs := rt.r.ScrapeFleet(sctx)
	rt.lastScrape = &fs
	return fs
}

// handleTracez serves the router's sampled span trees — with stitched
// backend subtrees where the backend sampled the same request — in the
// same formats and with the same parameters as phpserve's /tracez
// (n, rid, format=json|folded|text|tree).
func (rt *router) handleTracez(w http.ResponseWriter, r *http.Request) {
	if rt.treeRing == nil {
		http.Error(w, "tracez: span-tree retention disabled (-treering 0)", http.StatusNotFound)
		return
	}
	obs.ServeTracez(w, r, rt.treeRing)
}

// clusterzBackendRow is one backend's slice of the fleet in /clusterz:
// the skew table that shows how the affinity ring split the load.
type clusterzBackendRow struct {
	ID           string  `json:"id"`
	Addr         string  `json:"addr"`
	Requests     float64 `json:"requests"`
	LoadShare    float64 `json:"load_share"`
	CacheHits    float64 `json:"cache_hits"`
	CacheLookups float64 `json:"cache_lookups"`
	HitRatio     float64 `json:"hit_ratio"`
	Error        string  `json:"error,omitempty"`
}

// clusterzProfile is the fleet-merged flat profile's headline block —
// the paper's Fig. 1 numbers computed over the whole cluster's windowed
// cycles, not any single process.
type clusterzProfile struct {
	TotalCycles float64 `json:"total_cycles"`
	Functions   int     `json:"functions"`
	Hottest     string  `json:"hottest,omitempty"`
	HottestFrac float64 `json:"hottest_frac"`
	FuncsFor65  int     `json:"funcs_for_65"`
}

// clusterzResponse is the GET /clusterz JSON shape.
type clusterzResponse struct {
	Time            string               `json:"time"`
	BackendsUp      int                  `json:"backends_up"`
	BackendsScraped int                  `json:"backends_scraped"`
	Requests        float64              `json:"requests"`
	CacheHitRatio   float64              `json:"cache_hit_ratio"`
	LatencyP50Ms    float64              `json:"latency_p50_ms"`
	LatencyP95Ms    float64              `json:"latency_p95_ms"`
	LatencyP99Ms    float64              `json:"latency_p99_ms"`
	Profile         clusterzProfile      `json:"profile"`
	Backends        []clusterzBackendRow `json:"backends"`
}

// handleClusterz serves the merged fleet view: aggregate hit ratio and
// latency quantiles from bucket-wise merged histograms, the per-backend
// skew table, and the cluster-wide Fig. 1 profile headline.
func (rt *router) handleClusterz(w http.ResponseWriter, r *http.Request) {
	fs := rt.fleet(r.Context())
	lat := fs.Latency()
	resp := clusterzResponse{
		Time:            fs.Time.UTC().Format(time.RFC3339Nano),
		BackendsUp:      rt.r.Stats().UpCount(),
		BackendsScraped: fs.Scraped(),
		Requests:        fs.Requests(),
		CacheHitRatio:   finiteg(fs.CacheHitRatio()),
		LatencyP50Ms:    1000 * lat.Quantile(0.5),
		LatencyP95Ms:    1000 * lat.Quantile(0.95),
		LatencyP99Ms:    1000 * lat.Quantile(0.99),
		Profile: clusterzProfile{
			TotalCycles: fs.Profile.Total,
			Functions:   fs.Profile.NumFunctions(),
			HottestFrac: finiteg(fs.Profile.HottestFrac()),
			FuncsFor65:  fs.Profile.FuncsForFrac(0.65),
		},
	}
	if fs.Profile.NumFunctions() > 0 {
		resp.Profile.Hottest = fs.Profile.Entries[0].Name
	}
	total := fs.Requests()
	for _, b := range fs.Backends {
		row := clusterzBackendRow{ID: b.ID, Addr: b.Addr}
		if b.Err != nil {
			row.Error = b.Err.Error()
		} else {
			row.Requests = b.Requests()
			row.CacheHits = b.CacheHits()
			row.CacheLookups = b.CacheLookups()
			if row.CacheLookups > 0 {
				row.HitRatio = row.CacheHits / row.CacheLookups
			}
			if total > 0 {
				row.LoadShare = row.Requests / total
			}
		}
		resp.Backends = append(resp.Backends, row)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// eventzResponse is the GET /eventz JSON shape: the bounded cluster
// event timeline (backend up/down, ring ownership changes, rolling
// restart phases), oldest first.
type eventzResponse struct {
	Total  int64            `json:"total"`
	Counts map[string]int64 `json:"counts"`
	Events []obs.Event      `json:"events"`
}

// handleEventz serves the retained cluster events. Parameter n bounds
// the tail (default all retained).
func (rt *router) handleEventz(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if err := json.Unmarshal([]byte(v), &n); err != nil {
			http.Error(w, "eventz: n must be an integer", http.StatusBadRequest)
			return
		}
	}
	resp := eventzResponse{
		Total:  rt.events.Total(),
		Counts: rt.events.Counts(),
		Events: rt.events.Last(n),
	}
	if resp.Events == nil {
		resp.Events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// clusterMetrics appends the observability-plane series to the router's
// /metrics exposition: event and stitching counters plus the
// cluster-level gauges computed from a (TTL-coalesced) fleet scrape.
func (rt *router) clusterMetrics(ctx context.Context, e *obs.Encoder, rs serve.RouterStats) {
	e.Counter("phprouter_stitched_trees_total",
		"Backend span trees fetched and grafted under a router proxy span.",
		obs.Sample{Value: float64(rs.Stitched)})
	e.Counter("phprouter_stitch_errors_total",
		"Backend tree fetches that failed (tree evicted, backend gone, decode error).",
		obs.Sample{Value: float64(rs.StitchErrors)})
	if rt.treeRing != nil {
		e.Counter("phprouter_trace_trees_total",
			"Sampled router span trees ever retained in the /tracez ring.",
			obs.Sample{Value: float64(rt.treeRing.Total())})
	}

	counts := rt.events.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	evs := make([]obs.Sample, 0, len(kinds))
	for _, k := range kinds {
		evs = append(evs, obs.Sample{
			Labels: []obs.Label{{Name: "kind", Value: k}},
			Value:  float64(counts[k]),
		})
	}
	e.Counter("phprouter_events_total",
		"Cluster events recorded (backend up/down, ring changes, restart phases), by kind.", evs...)

	fs := rt.fleet(ctx)
	e.Gauge("phprouter_cluster_backends_scraped",
		"Backends whose /metrics and /profilez answered the last fleet scrape.",
		obs.Sample{Value: float64(fs.Scraped())})
	e.Gauge("phprouter_cluster_scrape_errors",
		"Healthy backends the last fleet scrape failed to read.",
		obs.Sample{Value: float64(len(fs.Backends) - fs.Scraped())})
	e.Gauge("phprouter_cluster_requests",
		"Fleet-wide served requests (merged backend counters at the last scrape).",
		obs.Sample{Value: fs.Requests()})
	e.Gauge("phprouter_cluster_cache_hit_ratio",
		"Aggregate response-cache hit fraction across the fleet, from merged counters.",
		obs.Sample{Value: finiteg(fs.CacheHitRatio())})
	lat := fs.Latency()
	e.Gauge("phprouter_cluster_latency_seconds",
		"Fleet request latency quantiles from the bucket-wise merged histograms.",
		obs.Sample{Labels: []obs.Label{{Name: "quantile", Value: "0.5"}}, Value: lat.Quantile(0.5)},
		obs.Sample{Labels: []obs.Label{{Name: "quantile", Value: "0.95"}}, Value: lat.Quantile(0.95)},
		obs.Sample{Labels: []obs.Label{{Name: "quantile", Value: "0.99"}}, Value: lat.Quantile(0.99)})
	e.Gauge("phprouter_cluster_profile_hottest_frac",
		"Hottest function's share of fleet-merged windowed cycles (cluster Fig. 1 headline).",
		obs.Sample{Value: finiteg(fs.Profile.HottestFrac())})
	e.Gauge("phprouter_cluster_profile_funcs_for_65",
		"Hottest functions covering 65% of fleet-merged cycles (cluster Fig. 1 headline).",
		obs.Sample{Value: float64(fs.Profile.FuncsForFrac(0.65))})
	e.Gauge("phprouter_cluster_profile_functions",
		"Distinct functions in the fleet-merged profile window.",
		obs.Sample{Value: float64(fs.Profile.NumFunctions())})
}

// finiteg clamps NaN/±Inf to 0 so empty-fleet ratios encode cleanly.
func finiteg(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// accessLogWriter resolves the -accesslog flag: "" disables, "-" is
// stdout, anything else is appended to as a file. The returned closer
// flushes the file on drain (nil for stdout/disabled).
func accessLogWriter(path string) (io.Writer, io.Closer, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stdout, nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}
