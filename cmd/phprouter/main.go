// Command phprouter is the cluster front for phpserve: a reverse proxy
// that routes each request to a backend by consistent hash on the page
// key, so every backend's response cache owns a stable slice of the key
// space (the PHP-FPM topology, with cache-affinity dispatch).
//
// Backends come from either -backends (addresses of externally managed
// phpserve -fpm processes) or -spawn N (phprouter launches and
// supervises N phpserve children itself). The router applies the
// serving lifecycle one level up: it health-checks every backend's
// /healthz, evicts draining or dead backends from the ring (their key
// range rebalances to ring successors; everyone else's cache stays
// hot), re-admits them when healthy, sheds with typed 503s before a
// backend saturates, and reroutes on connection-refused so a rolling
// restart (POST /restart) never surfaces a connection error to a
// client.
//
// Usage:
//
//	phprouter [-addr :8090] [-backends host:port,...] [-spawn 4]
//	          [-phpserve ./phpserve] [-baseport 9101] [-backendargs "..."]
//	          [-pages 512] [-zipf 1.0] [-seed 1] [-replicas 512]
//	          [-maxinflight 32] [-health 500ms] [-healthtimeout 1s]
//	          [-retrywait 60s] [-drain 30s]
//	          [-accesslog path|-] [-sample 0.01] [-treering 64]
//	          [-eventbuf 256] [-scrapetimeout 2s]
//
// Endpoints: / proxies renders; /metrics (phprouter_* series, cluster
// aggregates included), /healthz, /backends report router state;
// /tracez serves sampled router span trees with backend trees stitched
// in; /clusterz serves the merged fleet view (aggregate hit ratio,
// per-backend skew, cluster Fig. 1 profile headline); /eventz serves
// the bounded cluster event timeline; POST /restart rolls every spawned
// backend through drain → restart → readmit under load.
//
// Every proxied request carries an X-Request-Id (inbound one kept,
// otherwise minted) that is forwarded to the backend and echoed to the
// client, so one ID correlates the router access-log line, the backend
// line, and the stitched trace tree.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// router wraps serve.Router with the binary's frontend concerns: page
// key derivation, metrics exposition, and the rolling-restart
// orchestration over supervised children.
type router struct {
	r     *serve.Router
	sup   *serve.Supervisor // nil when backends are external
	start time.Time

	// pageKeys draws a page identity for requests that arrive without
	// one, and the query is rewritten so the backend renders the same
	// page the router hashed (nil when -pages is 0).
	pageMu   sync.Mutex
	pageKeys *workload.ZipfKeys

	// addrs maps backend id to address for restart/readmission.
	addrs map[string]string

	// restartMu serializes rolling restarts (a second POST /restart
	// while one is running answers 409).
	restartMu sync.Mutex

	drainGrace time.Duration

	// events is the bounded cluster-event timeline behind /eventz and
	// phprouter_events_total; serve.Router appends health transitions,
	// the restart handler appends restart phases.
	events *obs.EventRing
	// treeRing retains sampled (and stitched) router span trees for
	// /tracez; nil with -treering 0.
	treeRing *obs.TreeRing
	// scrapeMu guards the TTL-coalesced fleet scrape cache behind
	// /clusterz and the phprouter_cluster_* gauges.
	scrapeMu   sync.Mutex
	lastScrape *serve.FleetScrape
	scrapeTO   time.Duration
}

// handleProxy derives the request's cache key and forwards it through
// the affinity router. Requests without an explicit ?page= get a
// router-drawn Zipf page identity (rewritten into the query so backend
// render and router hash agree); with -pages 0 the key falls back to
// the request path.
func (rt *router) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	key := r.URL.Path
	page := r.URL.Query().Get("page")
	if page == "" && rt.pageKeys != nil {
		rt.pageMu.Lock()
		n := rt.pageKeys.Next()
		rt.pageMu.Unlock()
		page = strconv.Itoa(n)
		q := r.URL.Query()
		q.Set("page", page)
		r.URL.RawQuery = q.Encode()
	}
	if page != "" {
		key = "page:" + page
	}
	rt.r.Proxy(w, r, key)
}

// handleHealthz reports router readiness: 200 while at least one
// backend is up and the router is not draining.
func (rt *router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rs := rt.r.Stats()
	type backendz struct {
		ID   string `json:"id"`
		Addr string `json:"addr"`
		Up   bool   `json:"up"`
	}
	resp := struct {
		Status     string     `json:"status"` // ready | draining | no_backends
		Ready      bool       `json:"ready"`
		BackendsUp int        `json:"backends_up"`
		Backends   []backendz `json:"backends"`
	}{Status: "ready", Ready: true, BackendsUp: rs.UpCount()}
	for _, b := range rs.Backends {
		resp.Backends = append(resp.Backends, backendz{b.ID, b.Addr, b.Up})
	}
	switch {
	case rs.Draining:
		resp.Status, resp.Ready = "draining", false
	case rs.UpCount() == 0:
		resp.Status, resp.Ready = "no_backends", false
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleBackends dumps per-backend routing state as JSON (a debugging
// view; /metrics carries the same numbers as series).
func (rt *router) handleBackends(w http.ResponseWriter, _ *http.Request) {
	rs := rt.r.Stats()
	type row struct {
		ID        string `json:"id"`
		Addr      string `json:"addr"`
		Up        bool   `json:"up"`
		Inflight  int    `json:"inflight"`
		Requests  int64  `json:"requests"`
		Errors    int64  `json:"errors"`
		Shed      int64  `json:"shed"`
		CacheHits int64  `json:"cache_hits"`
	}
	out := struct {
		Draining bool  `json:"draining"`
		Retries  int64 `json:"retries"`
		Rows     []row `json:"backends"`
	}{Draining: rs.Draining, Retries: rs.Retries}
	for _, b := range rs.Backends {
		out.Rows = append(out.Rows, row{b.ID, b.Addr, b.Up, b.Inflight, b.Requests, b.Errors, b.Shed, b.CacheHits})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleMetrics renders the phprouter_* series in the Prometheus text
// format, including the cluster-level aggregates scraped from the
// backends (see clusterMetrics).
func (rt *router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rs := rt.r.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewEncoder(w)

	e.Gauge("phprouter_uptime_seconds", "Seconds since the router started.",
		obs.Sample{Value: time.Since(rt.start).Seconds()})
	e.Gauge("phprouter_backends", "Configured backend count.",
		obs.Sample{Value: float64(len(rs.Backends))})
	e.Gauge("phprouter_backends_up", "Backends currently healthy and on the ring.",
		obs.Sample{Value: float64(rs.UpCount())})
	e.Gauge("phprouter_draining", "1 while the router is draining for shutdown.",
		obs.Sample{Value: boolGauge(rs.Draining)})

	up := make([]obs.Sample, 0, len(rs.Backends))
	inflight := make([]obs.Sample, 0, len(rs.Backends))
	reqs := make([]obs.Sample, 0, len(rs.Backends))
	errs := make([]obs.Sample, 0, len(rs.Backends))
	hits := make([]obs.Sample, 0, len(rs.Backends))
	sheds := make([]obs.Sample, 0, len(rs.Backends))
	for _, b := range rs.Backends {
		l := []obs.Label{{Name: "backend", Value: b.ID}}
		up = append(up, obs.Sample{Labels: l, Value: boolGauge(b.Up)})
		inflight = append(inflight, obs.Sample{Labels: l, Value: float64(b.Inflight)})
		reqs = append(reqs, obs.Sample{Labels: l, Value: float64(b.Requests)})
		errs = append(errs, obs.Sample{Labels: l, Value: float64(b.Errors)})
		hits = append(hits, obs.Sample{Labels: l, Value: float64(b.CacheHits)})
		sheds = append(sheds, obs.Sample{Labels: l, Value: float64(b.Shed)})
	}
	e.Gauge("phprouter_backend_up", "1 while the labelled backend is healthy and owns its key range.", up...)
	e.Gauge("phprouter_backend_inflight", "Requests currently proxied to the labelled backend.", inflight...)
	e.Counter("phprouter_requests_total", "Requests answered by the labelled backend.", reqs...)
	e.Counter("phprouter_backend_errors_total", "Transport failures against the labelled backend.", errs...)
	e.Counter("phprouter_backend_cache_hits_total", "Responses the labelled backend served from its cache (X-Cache: HIT).", hits...)
	e.Counter("phprouter_backend_shed_total", "Requests shed at the labelled backend's inflight cap.", sheds...)

	e.Counter("phprouter_shed_total", "Router-level sheds by reason.",
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: serve.RouterShedOverload}}, Value: float64(rs.ShedOverload)},
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: serve.RouterShedNoBackend}}, Value: float64(rs.ShedNoBackend)},
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: serve.RouterShedDraining}}, Value: float64(rs.ShedDraining)})
	e.Counter("phprouter_retries_total", "Reroutes to a fallback ring owner (refused connection or backend-side 503).",
		obs.Sample{Value: float64(rs.Retries)})

	for _, b := range rs.Backends {
		e.Histogram("phprouter_backend_latency_seconds",
			"Proxied request latency through the labelled backend.",
			[]obs.Label{{Name: "backend", Value: b.ID}}, b.Latency)
	}
	rt.clusterMetrics(r.Context(), e, rs)
	if err := e.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "phprouter: metrics write: %v\n", err)
	}
}

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleRestart rolls every supervised backend: drain (evict from the
// ring), SIGTERM, wait for exit, start a fresh process, wait healthy,
// readmit. One backend at a time, so N-1 backends keep serving (and
// keep their caches) throughout. External-backend mode answers 501.
func (rt *router) handleRestart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if rt.sup == nil {
		http.Error(w, "restart requires spawned backends (-spawn)", http.StatusNotImplemented)
		return
	}
	if !rt.restartMu.TryLock() {
		http.Error(w, "a rolling restart is already in progress", http.StatusConflict)
		return
	}
	defer rt.restartMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	progress := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, p := range rt.sup.Procs() {
		id := p.ID()
		progress("backend %s: draining and evicting from ring", id)
		rt.events.Add(time.Now(), obs.EventRestartPhase, id, "drain")
		rt.r.SetBackendUp(id, false)
		stopCtx, cancel := context.WithTimeout(r.Context(), rt.drainGrace)
		err := p.Stop(stopCtx)
		cancel()
		if err != nil {
			progress("backend %s: %v", id, err)
		}
		rt.events.Add(time.Now(), obs.EventRestartPhase, id, "restart")
		if err := p.Restart(); err != nil {
			progress("backend %s: restart failed: %v", id, err)
			return
		}
		rt.events.Add(time.Now(), obs.EventRestartPhase, id, "wait_healthy")
		waitCtx, cancel := context.WithTimeout(r.Context(), rt.drainGrace+2*time.Minute)
		err = rt.r.WaitHealthy(waitCtx, rt.addrs[id], 100*time.Millisecond)
		cancel()
		if err != nil {
			progress("backend %s: %v", id, err)
			return
		}
		rt.r.SetBackendUp(id, true)
		progress("backend %s: healthy, readmitted to ring", id)
	}
	rt.events.Add(time.Now(), obs.EventRestartPhase, "", "complete")
	progress("rolling restart complete")
}

func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", rt.handleProxy)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/backends", rt.handleBackends)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/tracez", rt.handleTracez)
	mux.HandleFunc("/clusterz", rt.handleClusterz)
	mux.HandleFunc("/eventz", rt.handleEventz)
	mux.HandleFunc("/restart", rt.handleRestart)
	return mux
}

func main() {
	addr := flag.String("addr", ":8090", "router listen address")
	backendsFlag := flag.String("backends", "", "comma-separated backend addresses (host:port) of externally managed phpserve -fpm processes")
	spawn := flag.Int("spawn", 0, "spawn and supervise this many phpserve backend processes (mutually exclusive with -backends)")
	phpserveBin := flag.String("phpserve", "./phpserve", "phpserve binary to spawn backends from (spawn mode)")
	baseport := flag.Int("baseport", 9101, "first backend port; backend i listens on 127.0.0.1:baseport+i (spawn mode)")
	backendArgs := flag.String("backendargs", "", "extra space-separated flags passed to every spawned phpserve (e.g. \"-cache 64 -workers 2\")")
	pages := flag.Int("pages", 512, "page universe for router-drawn page identities; 0 routes on the raw request path instead")
	zipf := flag.Float64("zipf", 1.0, "Zipf exponent for router-drawn page identities")
	seed := flag.Int64("seed", 1, "seed for the router's page-identity sampler")
	replicas := flag.Int("replicas", 2048, "virtual nodes per backend on the affinity ring (more = smoother key split)")
	maxInflight := flag.Int("maxinflight", 32, "per-backend inflight cap; beyond it the router sheds 503 (0 unlimited)")
	healthEvery := flag.Duration("health", 500*time.Millisecond, "backend /healthz probe interval")
	healthTO := flag.Duration("healthtimeout", time.Second, "per-probe timeout")
	retryWait := flag.Duration("retrywait", 60*time.Second, "startup budget for spawned backends to become healthy (covers warmup)")
	drainTO := flag.Duration("drain", 30*time.Second, "grace for router drain on SIGTERM and per-backend drain during rolling restarts")
	accessLog := flag.String("accesslog", "", "JSON-lines access log for sampled proxied requests and every shed (path, - for stdout, empty disables)")
	sample := flag.Float64("sample", 0.01, "per-request router span-tree sampling rate in [0,1]")
	treeRingSize := flag.Int("treering", 64, "sampled router span trees retained for /tracez, backend trees stitched in (0 disables)")
	eventBuf := flag.Int("eventbuf", 256, "cluster events retained for /eventz")
	scrapeTO := flag.Duration("scrapetimeout", 2*time.Second, "budget for one fleet scrape pass behind /clusterz and the phprouter_cluster_* gauges")
	flag.Parse()

	var external []string
	if *backendsFlag != "" {
		for _, a := range strings.Split(*backendsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				external = append(external, a)
			}
		}
	}
	if err := validateRouterFlags(external, *spawn, *pages, *zipf, *maxInflight, *replicas, *healthEvery, *healthTO, *drainTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateObsFlags(*sample, *treeRingSize, *eventBuf, *scrapeTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	logW, logC, err := accessLogWriter(*accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var alog *obs.AccessLog
	if logW != nil {
		alog = obs.NewAccessLog(logW)
	}
	events := obs.NewEventRing(*eventBuf)
	var treeRing *obs.TreeRing
	if *treeRingSize > 0 {
		treeRing = obs.NewTreeRing(*treeRingSize)
	}

	rt := &router{
		r: serve.NewRouter(serve.RouterConfig{
			RingReplicas:  *replicas,
			MaxInflight:   *maxInflight,
			HealthTimeout: *healthTO,
			SampleRate:    *sample,
			TreeRing:      treeRing,
			AccessLog:     alog,
			Events:        events,
		}),
		start:      time.Now(),
		addrs:      make(map[string]string),
		drainGrace: *drainTO,
		events:     events,
		treeRing:   treeRing,
		scrapeTO:   *scrapeTO,
	}
	if *pages > 0 {
		keys, err := workload.NewZipfKeys(*seed, *zipf, *pages)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rt.pageKeys = keys
	}

	if *spawn > 0 {
		rt.sup = serve.NewSupervisor()
		rt.sup.Logf = func(format string, args ...any) {
			fmt.Printf("phprouter: "+format+"\n", args...)
		}
		extra := strings.Fields(*backendArgs)
		for i := 0; i < *spawn; i++ {
			id := strconv.Itoa(i)
			baddr := "127.0.0.1:" + strconv.Itoa(*baseport+i)
			args := append([]string{"-fpm", "-backend", id, "-listen", baddr}, extra...)
			if _, err := rt.sup.Add(serve.ProcSpec{ID: id, Binary: *phpserveBin, Args: args}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rt.addrs[id] = baddr
			rt.r.AddBackend(id, baddr)
			fmt.Printf("phprouter: spawned backend %s on %s\n", id, baddr)
		}
	} else {
		for i, baddr := range external {
			id := strconv.Itoa(i)
			rt.addrs[id] = baddr
			rt.r.AddBackend(id, baddr)
			fmt.Printf("phprouter: backend %s at %s\n", id, baddr)
		}
	}

	rootCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	// Wait for every backend to answer /healthz before serving: spawned
	// children are still warming their pools, and external backends may
	// not be up yet. Failures here mark the backend down; the health
	// loop keeps probing and admits it when it recovers.
	waitCtx, cancel := context.WithTimeout(rootCtx, *retryWait)
	for id, baddr := range rt.addrs {
		if err := rt.r.WaitHealthy(waitCtx, baddr, 200*time.Millisecond); err != nil {
			fmt.Fprintf(os.Stderr, "phprouter: backend %s: %v (will keep probing)\n", id, err)
			rt.r.SetBackendUp(id, false)
		}
	}
	cancel()

	if rt.sup != nil {
		go rt.sup.Watch(rootCtx)
	}
	go rt.r.HealthLoop(rootCtx, *healthEvery, func(tr serve.HealthTransition) {
		if tr.Up {
			fmt.Printf("phprouter: backend %s healthy, readmitted to ring\n", tr.ID)
		} else {
			fmt.Printf("phprouter: backend %s unhealthy, evicted from ring (%v)\n", tr.ID, tr.Err)
		}
	})

	fmt.Printf("phprouter: routing on %s (%d backends, %d ring replicas, maxinflight %d)\n",
		*addr, len(rt.addrs), *replicas, *maxInflight)
	httpSrv := &http.Server{Addr: *addr, Handler: rt.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-rootCtx.Done():
	}
	stop()

	// Drain: shed new requests (typed 503s), let in-flight proxies
	// finish, then stop the children gracefully.
	fmt.Printf("phprouter: draining (grace %v)\n", *drainTO)
	rt.r.SetDraining()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	httpSrv.Shutdown(dctx)
	if rt.sup != nil {
		rt.sup.StopAll(dctx)
	}
	rs := rt.r.Stats()
	fmt.Printf("phprouter: drained: %d proxied, %d retries, shed %d (overload %d, no_backend %d, draining %d), %d trees stitched (%d errors)\n",
		rs.Requests(), rs.Retries, rs.ShedOverload+rs.ShedNoBackend+rs.ShedDraining,
		rs.ShedOverload, rs.ShedNoBackend, rs.ShedDraining, rs.Stitched, rs.StitchErrors)
	if logC != nil {
		logC.Close()
	}
}

// validateObsFlags checks the observability flag family.
func validateObsFlags(sample float64, treering, eventbuf int, scrapeTO time.Duration) error {
	if sample < 0 || sample > 1 {
		return fmt.Errorf("phprouter: -sample must be in [0,1], got %g", sample)
	}
	if treering < 0 {
		return fmt.Errorf("phprouter: -treering must be >= 0, got %d", treering)
	}
	if eventbuf <= 0 {
		return fmt.Errorf("phprouter: -eventbuf must be positive, got %d", eventbuf)
	}
	if scrapeTO <= 0 {
		return fmt.Errorf("phprouter: -scrapetimeout must be positive, got %v", scrapeTO)
	}
	return nil
}

// validateRouterFlags fails fast on inconsistent flag values.
func validateRouterFlags(external []string, spawn, pages int, zipf float64, maxInflight, replicas int, healthEvery, healthTO, drain time.Duration) error {
	if spawn < 0 {
		return fmt.Errorf("phprouter: -spawn must be >= 0, got %d", spawn)
	}
	if spawn > 0 && len(external) > 0 {
		return fmt.Errorf("phprouter: -spawn and -backends are mutually exclusive")
	}
	if spawn == 0 && len(external) == 0 {
		return fmt.Errorf("phprouter: need backends: set -spawn N or -backends host:port,...")
	}
	if pages < 0 {
		return fmt.Errorf("phprouter: -pages must be >= 0, got %d", pages)
	}
	if pages > 0 && zipf <= 0 {
		return fmt.Errorf("phprouter: -zipf must be positive with -pages, got %g", zipf)
	}
	if maxInflight < 0 {
		return fmt.Errorf("phprouter: -maxinflight must be >= 0, got %d", maxInflight)
	}
	if replicas <= 0 {
		return fmt.Errorf("phprouter: -replicas must be positive, got %d", replicas)
	}
	if healthEvery <= 0 || healthTO <= 0 {
		return fmt.Errorf("phprouter: -health and -healthtimeout must be positive, got %v/%v", healthEvery, healthTO)
	}
	if drain < 0 {
		return fmt.Errorf("phprouter: -drain must be >= 0, got %v", drain)
	}
	return nil
}
