package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/workload"
)

// testServer builds a warmed server with a roomy admission queue and no
// deadline. sampleRate 1 profiles every request; logW may be nil.
func testServer(t *testing.T, workers, warmup int, sampleRate float64, logW io.Writer) *server {
	t.Helper()
	return testServerSched(t, workers, warmup, sampleRate, logW, serve.Config{QueueDepth: 64})
}

// testServerSched is testServer with an explicit lifecycle config, for
// the overload/deadline/drain tests.
func testServerSched(t *testing.T, workers, warmup int, sampleRate float64, logW io.Writer, sc serve.Config) *server {
	t.Helper()
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceCapacity = 1024
	pool, err := workload.NewPool(workers, cfg, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	warmPool(pool, warmup, 0)
	col := obs.NewCollector(sampleRate, logW, nil)
	col.SetTreeRing(obs.NewTreeRing(64))
	return newServer(serve.NewScheduler(pool, sc), col, "wordpress", "accelerated", 8)
}

func TestServeConcurrentRequests(t *testing.T) {
	var logBuf bytes.Buffer
	s := testServer(t, 4, 2, 1, &logBuf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(ts.URL + "/")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
				if len(body) == 0 || !strings.Contains(string(body), "<") {
					t.Errorf("response does not look like a page: %q", string(body)[:min(64, len(body))])
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != clients*perClient {
		t.Errorf("stats requests = %d, want %d", st.Requests, clients*perClient)
	}
	if st.SampledSpans != st.Requests {
		t.Errorf("sample rate 1: sampled %d of %d", st.SampledSpans, st.Requests)
	}
	if st.Workers != 4 || st.App != "wordpress" || st.Config != "accelerated" {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.SimCycles <= 0 || st.CyclesPerRequest <= 0 {
		t.Errorf("no simulated cost recorded: %+v", st)
	}
	if st.LatencyP50Us <= 0 || st.LatencyP50Us > st.LatencyP99Us || st.LatencyP99Us > st.LatencyMaxUs {
		t.Errorf("latency percentiles out of order: %+v", st)
	}
	if st.ResponseBytes <= 0 {
		t.Errorf("no response bytes counted")
	}
	for _, cat := range []string{"hash", "heap", "string", "regex"} {
		if st.SimCategoryCycles[cat] <= 0 {
			t.Errorf("category %s has no cycles: %v", cat, st.SimCategoryCycles)
		}
	}
	var shareSum float64
	for _, v := range st.SimCategoryShare {
		shareSum += v
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("category shares sum to %v, want 1", shareSum)
	}
	if st.RegexCacheHitRatio <= 0 || st.RegexCacheHitRatio > 1 {
		t.Errorf("regex cache hit ratio = %v", st.RegexCacheHitRatio)
	}

	// Every request was sampled, so the access log must hold one valid
	// JSON line per request with an attribution breakdown.
	lines := 0
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var e obs.LogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("access log line %d: %v", lines, err)
		}
		if !e.Sampled || e.Cycles <= 0 || len(e.Breakdown) == 0 {
			t.Errorf("access log entry missing attribution: %+v", e)
		}
		if e.Worker < 0 || e.Worker >= 4 || e.Request == 0 {
			t.Errorf("access log identity wrong: %+v", e)
		}
		lines++
	}
	if lines != clients*perClient {
		t.Errorf("access log has %d lines, want %d", lines, clients*perClient)
	}
}

// TestStatsZeroRequests is the NaN/Inf regression test: a freshly
// started (even unwarmed) server must emit valid, finite JSON from
// /stats before it has measured a single request.
func TestStatsZeroRequests(t *testing.T) {
	s := testServer(t, 2, 0, 0.01, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "NaN") || strings.Contains(string(body), "Inf") {
		t.Fatalf("/stats emitted non-finite values: %s", body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("zero-request /stats is not valid JSON: %v\n%s", err, body)
	}
	if st.Requests != 0 || st.CyclesPerRequest != 0 || st.RequestsPerSec < 0 {
		t.Errorf("zero-request stats inconsistent: %+v", st)
	}
	for k, v := range st.SimCategoryShare {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("share %s non-finite after decode: %v", k, v)
		}
	}
}

var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// TestMetricsEndpoint scrapes /metrics from a live server under a small
// pooled workload and validates the Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, 2, 2, 1, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasSuffix(text, "\n") {
		t.Errorf("exposition must end with a newline")
	}

	// Every non-comment line must be a well-formed sample line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed metric line: %q", line)
		}
	}

	for _, want := range []string{
		`phpserve_requests_total{app="wordpress",config="accelerated"} 6`,
		`phpserve_sim_cycles_total{category="hash"}`,
		`phpserve_sim_cycles_total{category="heap"}`,
		`phpserve_sim_cycles_total{category="string"}`,
		`phpserve_sim_cycles_total{category="regex"}`,
		`phpserve_request_latency_seconds_bucket{le="+Inf"} 6`,
		`phpserve_request_latency_seconds_count 6`,
		`phpserve_request_latency_summary_seconds{quantile="0.5"}`,
		`phpserve_workers 2`,
		`phpserve_hashtable_hit_ratio`,
		`phpserve_hashmap_rebuilds_total`,
		`phpserve_regex_cache_hit_ratio`,
		`phpserve_accel_cycles_total{accel="hash-table"}`,
		`phpserve_trace_events_total{kind="hash-get"}`,
		`# TYPE phpserve_request_latency_seconds histogram`,
		`# TYPE phpserve_requests_total counter`,
		`# TYPE phpserve_workers gauge`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Histogram buckets must be cumulative (non-decreasing).
	var last float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "phpserve_request_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %v", line, last)
		}
		last = v
	}

	// Per-category cycle counters from /metrics must agree with /stats.
	if !strings.Contains(text, "phpserve_sim_uops_total") {
		t.Errorf("missing uops counter")
	}
}

// TestMetricsZeroRequests: a cold scrape must still be valid exposition
// (zero-sample series).
func TestMetricsZeroRequests(t *testing.T) {
	s := testServer(t, 1, 0, 0.01, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(text, "phpserve_request_latency_seconds_count 0") {
		t.Errorf("zero-sample histogram missing count 0:\n%s", text)
	}
	if strings.Contains(text, "NaN") {
		t.Errorf("cold scrape emitted NaN:\n%s", text)
	}
}

func TestPprofGated(t *testing.T) {
	s := testServer(t, 1, 0, 0, nil)
	ts := httptest.NewServer(s.handler())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
	ts.Close()

	s.pprofEnabled = true
	ts = httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof enabled: status %d", resp.StatusCode)
	}
}

func TestNotFoundAndHealthz(t *testing.T) {
	s := testServer(t, 1, 1, 0, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ready" || !hz.Ready {
		t.Errorf("healthz = %d %+v", resp.StatusCode, hz)
	}
	if hz.Workers != 1 || hz.QueueLimit != 64 || hz.QueueDepth != 0 {
		t.Errorf("healthz queue fields wrong: %+v", hz)
	}
}

// TestOverloadShed503 is the overload acceptance criterion: with the
// only worker held and no queue, requests are shed immediately with 503
// + Retry-After instead of piling up, and capacity coming back makes
// the server serve again.
func TestOverloadShed503(t *testing.T) {
	var logBuf bytes.Buffer
	s := testServerSched(t, 1, 1, 0, &logBuf, serve.Config{QueueDepth: 0})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Saturate through the scheduler itself: one in-flight request holds
	// both the single admission slot and the only worker.
	entered := make(chan struct{})
	release := make(chan struct{})
	blocked := make(chan error, 1)
	go func() {
		_, err := s.sched.Do(context.Background(), func(*workload.Worker) error {
			close(entered)
			<-release
			return nil
		})
		blocked <- err
	}()
	<-entered
	before := runtime.NumGoroutine()
	const burst = 20
	for i := 0; i < burst; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("saturated server: status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("503 without Retry-After")
		}
	}
	// Sheds are immediate, so the burst must not have parked goroutines.
	if after := runtime.NumGoroutine(); after > before+burst/2 {
		t.Errorf("goroutines grew %d -> %d during shed burst", before, after)
	}
	st := s.sched.Stats()
	if st.ShedOverload != burst {
		t.Errorf("shed_overload = %d, want %d", st.ShedOverload, burst)
	}

	close(release)
	if err := <-blocked; err != nil {
		t.Fatalf("in-flight request during shed burst: %v", err)
	}
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status %d, want 200", resp.StatusCode)
	}

	// Every shed produced an access-log line with outcome and status.
	sheds := 0
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var e obs.LogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("access log: %v", err)
		}
		if e.Outcome == "shed_overload" {
			sheds++
			if e.Status != http.StatusServiceUnavailable || e.Worker != -1 {
				t.Errorf("shed log entry wrong: %+v", e)
			}
		}
	}
	if sheds != burst {
		t.Errorf("access log has %d shed lines, want %d", sheds, burst)
	}
}

// TestDeadline504: a request whose deadline expires before a worker
// frees up answers 504, and the shed is counted as a timeout.
func TestDeadline504(t *testing.T) {
	s := testServerSched(t, 1, 1, 0, nil, serve.Config{QueueDepth: 4, Timeout: 5 * time.Millisecond})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	wk := s.pool.Acquire() // saturate: the request must queue, then expire
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.pool.Release(wk)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	if st := s.sched.Stats(); st.ShedDeadline != 1 {
		t.Errorf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
}

// TestDrainLifecycle covers the SIGTERM path's state machine through
// the HTTP surface: under load, Drain lets in-flight requests finish
// (200), sheds new ones (503), flips /healthz to 503/draining, and
// leaves every worker back on the free list.
func TestDrainLifecycle(t *testing.T) {
	s := testServerSched(t, 2, 1, 0, nil, serve.Config{QueueDepth: 8})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// In-flight load while the drain starts.
	var wg sync.WaitGroup
	codes := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.sched.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("during drain: status %d, want 200 or 503", code)
		}
	}

	if st := s.sched.State(); st != serve.StateDrained {
		t.Errorf("state after drain = %v, want drained", st)
	}
	if idle := s.pool.Idle(); idle != s.pool.Size() {
		t.Errorf("drained pool has %d/%d workers free", idle, s.pool.Size())
	}

	// New requests and /healthz both answer 503 now.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained render: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Ready || hz.Status != "drained" {
		t.Errorf("drained healthz = %d %+v", resp.StatusCode, hz)
	}
}

// TestQueueMetricsExported: the queue series land on /metrics with the
// documented names.
func TestQueueMetricsExported(t *testing.T) {
	s := testServer(t, 1, 1, 0, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	drive(t, ts.URL, 3)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"phpserve_queue_depth 0",
		"phpserve_queue_limit 64",
		"phpserve_draining 0",
		`phpserve_shed_total{reason="overload"} 0`,
		`phpserve_shed_total{reason="timeout"} 0`,
		`phpserve_shed_total{reason="draining"} 0`,
		"phpserve_queue_wait_seconds_count 3",
		"# TYPE phpserve_queue_wait_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestValidateFlags exercises the fail-fast flag validation.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(4, 300, 64, 0.01, 0, 30*time.Second); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	for name, err := range map[string]error{
		"workers": validateFlags(0, 300, 64, 0.01, 0, 0),
		"warmup":  validateFlags(4, -1, 64, 0.01, 0, 0),
		"queue":   validateFlags(4, 300, -1, 0.01, 0, 0),
		"sample":  validateFlags(4, 300, 64, 1.5, 0, 0),
		"timeout": validateFlags(4, 300, 64, 0.01, -time.Second, 0),
		"drain":   validateFlags(4, 300, 64, 0.01, 0, -time.Second),
	} {
		if err == nil {
			t.Errorf("bad -%s accepted", name)
		}
	}
}

// drive serves n requests against a running test server.
func drive(t *testing.T, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := http.Get(url + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestTracezEndpoint covers the /tracez acceptance criterion: the export
// is valid trace_event JSON and each request's per-span self-cycles sum
// to its root total.
func TestTracezEndpoint(t *testing.T) {
	s := testServer(t, 2, 2, 1, nil) // sample every request
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	drive(t, ts.URL, 5)

	resp, err := http.Get(ts.URL + "/tracez?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var f struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Ph   string             `json:"ph"`
			Dur  float64            `json:"dur"`
			Tid  int                `json:"tid"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatalf("/tracez is not valid trace_event JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	// Group by request root: self-cycles across each request's events must
	// sum to that request's inclusive total.
	roots := 0
	var selfSum, rootSum float64
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("phase %q", ev.Ph)
		}
		names[ev.Name] = true
		selfSum += ev.Args["self_cycles"]
		if ev.Name == "request" {
			roots++
			rootSum += ev.Args["cycles"]
			if ev.Args["request"] == 0 {
				t.Error("root span missing request number")
			}
		}
	}
	if roots != 3 {
		t.Errorf("exported %d trees, want 3 (n=3)", roots)
	}
	if math.Abs(selfSum-rootSum) > 1e-6*rootSum {
		t.Errorf("Σ self-cycles %v != Σ root cycles %v", selfSum, rootSum)
	}
	for _, want := range []string{"request", "render", "render_item"} {
		if !names[want] {
			t.Errorf("export missing %q spans; have %v", want, names)
		}
	}

	// Folded and text forms render without error.
	for _, q := range []string{"/tracez?format=folded", "/tracez?format=text&n=1"} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("%s: status %d, %d bytes", q, resp.StatusCode, len(body))
		}
		if q == "/tracez?format=folded" && !strings.Contains(string(body), "request;") {
			t.Errorf("folded output has no stacks:\n%s", body)
		}
	}

	resp2, err := http.Get(ts.URL + "/tracez?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp2.StatusCode)
	}
}

// TestProfilezMatchesOffline is the /profilez acceptance criterion: on a
// warm server the live profile's headline numbers match the offline
// internal/profile result for the same fleet meter within 1% absolute.
func TestProfilezMatchesOffline(t *testing.T) {
	s := testServer(t, 2, 2, 0.25, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	drive(t, ts.URL, 20)

	// Offline reference: batch profile over the merged fleet meter.
	off := profile.FromMeter(s.pool.Snapshot().Meter)

	resp, err := http.Get(ts.URL + "/profilez?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr profilezResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("/profilez json: %v", err)
	}
	if !pr.SinceBoot {
		t.Errorf("first scrape should cover everything since boot: %+v", pr)
	}
	if math.Abs(pr.HottestFrac-off.HottestFrac()) > 0.01 {
		t.Errorf("hottest frac: live %v, offline %v", pr.HottestFrac, off.HottestFrac())
	}
	offCount, liveCount := off.FuncsForFrac(0.65), pr.FuncsFor65
	if offCount != liveCount {
		// Allow the counts to differ only if the cumulative shares at
		// those counts are within 1% absolute (tie-adjacent functions).
		cd := off.CDF([]int{offCount, liveCount})
		if math.Abs(cd[0]-cd[1]) > 0.01 {
			t.Errorf("funcs for 65%%: live %d, offline %d", liveCount, offCount)
		}
	}
	if pr.Functions != off.NumFunctions() {
		t.Errorf("functions: live %d, offline %d", pr.Functions, off.NumFunctions())
	}
	if pr.TotalCycles <= 0 || len(pr.Top) == 0 {
		t.Errorf("empty live profile: %+v", pr)
	}
	var shareSum float64
	for _, v := range pr.CategoryShare {
		shareSum += v
	}
	if math.Abs(shareSum-1) > 1e-6 {
		t.Errorf("category shares sum to %v", shareSum)
	}

	// Table and folded forms render and carry the headline content.
	resp2, err := http.Get(ts.URL + "/profilez?n=5")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	for _, want := range []string{"live flat profile", "hottest:", "functions for 65%", "cdf:", "function"} {
		if !strings.Contains(string(table), want) {
			t.Errorf("table output missing %q:\n%s", want, table)
		}
	}
	resp3, err := http.Get(ts.URL + "/profilez?format=folded")
	if err != nil {
		t.Fatal(err)
	}
	folded, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(folded), ";") {
		t.Errorf("folded output has no stacks:\n%s", folded)
	}

	resp4, err := http.Get(ts.URL + "/profilez?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp4.StatusCode)
	}
}

// TestProfileGaugesOnMetrics: the Fig. 1 headline numbers are exported
// as gauges, consistent with the same scrape's windowed profile.
func TestProfileGaugesOnMetrics(t *testing.T) {
	s := testServer(t, 1, 2, 1, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	drive(t, ts.URL, 4)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"phpserve_profile_hottest_frac{",
		"phpserve_profile_funcs_for_65{",
		"phpserve_profile_functions{",
		"phpserve_trace_trees_total{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The gauges carry plausible Fig. 1 values on a warm profile.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "phpserve_profile_hottest_frac{") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil || v <= 0 || v >= 1 {
				t.Errorf("hottest frac gauge = %q (%v)", line, err)
			}
		}
		if strings.HasPrefix(line, "phpserve_profile_funcs_for_65{") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil || v < 1 {
				t.Errorf("funcs-for-65 gauge = %q (%v)", line, err)
			}
		}
	}
}

// TestTracezDisabled: without a tree ring the endpoint reports 404
// rather than an empty export.
func TestTracezDisabled(t *testing.T) {
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := workload.NewPool(1, cfg, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(serve.NewScheduler(pool, serve.Config{QueueDepth: 8}), obs.NewCollector(0, nil, nil), "wordpress", "accelerated", 0)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"baseline", "mitigated", "accelerated"} {
		if _, err := configByName(name); err != nil {
			t.Errorf("configByName(%q) = %v", name, err)
		}
	}
	if _, err := configByName("turbo"); err == nil {
		t.Errorf("unknown config should error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestBackendIdentityStamping: in cluster mode (-fpm/-backend) the
// backend id appears on X-Backend, /healthz, and every access-log line;
// standalone servers log "-" and send no X-Backend header.
func TestBackendIdentityStamping(t *testing.T) {
	var buf bytes.Buffer
	srv := testServer(t, 1, 2, 1, &buf)
	srv.backendID = 3
	srv.col.SetBackend(srv.backendLabel())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Backend"); got != "3" {
		t.Errorf("X-Backend = %q, want 3", got)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthzResponse
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if h.Backend != "3" {
		t.Errorf("healthz backend = %q, want 3", h.Backend)
	}

	line := bytes.TrimSpace(buf.Bytes())
	var raw map[string]any
	if err := json.Unmarshal(line, &raw); err != nil {
		t.Fatalf("access log line: %v", err)
	}
	if raw["backend"] != "3" {
		t.Errorf("access log backend = %v, want \"3\"", raw["backend"])
	}
}

// TestStandaloneBackendDefaults: no -backend means no X-Backend header,
// "-" in healthz and the access log (the schema key is still present).
func TestStandaloneBackendDefaults(t *testing.T) {
	var buf bytes.Buffer
	srv := testServer(t, 1, 2, 1, &buf)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got, ok := resp.Header["X-Backend"]; ok {
		t.Errorf("standalone server sent X-Backend %v", got)
	}

	var raw map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &raw); err != nil {
		t.Fatal(err)
	}
	if got, ok := raw["backend"]; !ok || got != "-" {
		t.Errorf("access log backend = %v (present %v), want \"-\"", got, ok)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthzResponse
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if h.Backend != "-" {
		t.Errorf("healthz backend = %q, want \"-\"", h.Backend)
	}
}

// TestDBWaitPacesRenders: -dbwait holds the worker through the stall,
// so request latency is bounded below by it.
func TestDBWaitPacesRenders(t *testing.T) {
	srv := testServer(t, 1, 2, 0, nil)
	srv.dbWait = 40 * time.Millisecond
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	t0 := time.Now()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(t0); elapsed < srv.dbWait {
		t.Errorf("request finished in %v, faster than the %v db stall", elapsed, srv.dbWait)
	}
}

func TestValidateClusterFlags(t *testing.T) {
	if err := validateClusterFlags(-1, 0); err != nil {
		t.Errorf("standalone defaults rejected: %v", err)
	}
	if err := validateClusterFlags(2, 25*time.Millisecond); err != nil {
		t.Errorf("valid cluster flags rejected: %v", err)
	}
	if err := validateClusterFlags(-2, 0); err == nil {
		t.Error("bad -backend accepted")
	}
	if err := validateClusterFlags(0, -time.Second); err == nil {
		t.Error("negative -dbwait accepted")
	}
}
