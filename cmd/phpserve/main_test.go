package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// testServer builds a warmed server. sampleRate 1 profiles every
// request; logW may be nil.
func testServer(t *testing.T, workers, warmup int, sampleRate float64, logW io.Writer) *server {
	t.Helper()
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceCapacity = 1024
	pool, err := workload.NewPool(workers, cfg, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	warmPool(pool, warmup, 0)
	return newServer(pool, obs.NewCollector(sampleRate, logW, nil), "wordpress", "accelerated", 8)
}

func TestServeConcurrentRequests(t *testing.T) {
	var logBuf bytes.Buffer
	s := testServer(t, 4, 2, 1, &logBuf)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(ts.URL + "/")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
				if len(body) == 0 || !strings.Contains(string(body), "<") {
					t.Errorf("response does not look like a page: %q", string(body)[:min(64, len(body))])
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != clients*perClient {
		t.Errorf("stats requests = %d, want %d", st.Requests, clients*perClient)
	}
	if st.SampledSpans != st.Requests {
		t.Errorf("sample rate 1: sampled %d of %d", st.SampledSpans, st.Requests)
	}
	if st.Workers != 4 || st.App != "wordpress" || st.Config != "accelerated" {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.SimCycles <= 0 || st.CyclesPerRequest <= 0 {
		t.Errorf("no simulated cost recorded: %+v", st)
	}
	if st.LatencyP50Us <= 0 || st.LatencyP50Us > st.LatencyP99Us || st.LatencyP99Us > st.LatencyMaxUs {
		t.Errorf("latency percentiles out of order: %+v", st)
	}
	if st.ResponseBytes <= 0 {
		t.Errorf("no response bytes counted")
	}
	for _, cat := range []string{"hash", "heap", "string", "regex"} {
		if st.SimCategoryCycles[cat] <= 0 {
			t.Errorf("category %s has no cycles: %v", cat, st.SimCategoryCycles)
		}
	}
	var shareSum float64
	for _, v := range st.SimCategoryShare {
		shareSum += v
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("category shares sum to %v, want 1", shareSum)
	}
	if st.RegexCacheHitRatio <= 0 || st.RegexCacheHitRatio > 1 {
		t.Errorf("regex cache hit ratio = %v", st.RegexCacheHitRatio)
	}

	// Every request was sampled, so the access log must hold one valid
	// JSON line per request with an attribution breakdown.
	lines := 0
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var e obs.LogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("access log line %d: %v", lines, err)
		}
		if !e.Sampled || e.Cycles <= 0 || len(e.Breakdown) == 0 {
			t.Errorf("access log entry missing attribution: %+v", e)
		}
		if e.Worker < 0 || e.Worker >= 4 || e.Request == 0 {
			t.Errorf("access log identity wrong: %+v", e)
		}
		lines++
	}
	if lines != clients*perClient {
		t.Errorf("access log has %d lines, want %d", lines, clients*perClient)
	}
}

// TestStatsZeroRequests is the NaN/Inf regression test: a freshly
// started (even unwarmed) server must emit valid, finite JSON from
// /stats before it has measured a single request.
func TestStatsZeroRequests(t *testing.T) {
	s := testServer(t, 2, 0, 0.01, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "NaN") || strings.Contains(string(body), "Inf") {
		t.Fatalf("/stats emitted non-finite values: %s", body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("zero-request /stats is not valid JSON: %v\n%s", err, body)
	}
	if st.Requests != 0 || st.CyclesPerRequest != 0 || st.RequestsPerSec < 0 {
		t.Errorf("zero-request stats inconsistent: %+v", st)
	}
	for k, v := range st.SimCategoryShare {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("share %s non-finite after decode: %v", k, v)
		}
	}
}

var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// TestMetricsEndpoint scrapes /metrics from a live server under a small
// pooled workload and validates the Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, 2, 2, 1, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasSuffix(text, "\n") {
		t.Errorf("exposition must end with a newline")
	}

	// Every non-comment line must be a well-formed sample line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed metric line: %q", line)
		}
	}

	for _, want := range []string{
		`phpserve_requests_total{app="wordpress",config="accelerated"} 6`,
		`phpserve_sim_cycles_total{category="hash"}`,
		`phpserve_sim_cycles_total{category="heap"}`,
		`phpserve_sim_cycles_total{category="string"}`,
		`phpserve_sim_cycles_total{category="regex"}`,
		`phpserve_request_latency_seconds_bucket{le="+Inf"} 6`,
		`phpserve_request_latency_seconds_count 6`,
		`phpserve_request_latency_summary_seconds{quantile="0.5"}`,
		`phpserve_workers 2`,
		`phpserve_hashtable_hit_ratio`,
		`phpserve_hashmap_rebuilds_total`,
		`phpserve_regex_cache_hit_ratio`,
		`phpserve_accel_cycles_total{accel="hash-table"}`,
		`phpserve_trace_events_total{kind="hash-get"}`,
		`# TYPE phpserve_request_latency_seconds histogram`,
		`# TYPE phpserve_requests_total counter`,
		`# TYPE phpserve_workers gauge`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Histogram buckets must be cumulative (non-decreasing).
	var last float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "phpserve_request_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %v", line, last)
		}
		last = v
	}

	// Per-category cycle counters from /metrics must agree with /stats.
	if !strings.Contains(text, "phpserve_sim_uops_total") {
		t.Errorf("missing uops counter")
	}
}

// TestMetricsZeroRequests: a cold scrape must still be valid exposition
// (zero-sample series).
func TestMetricsZeroRequests(t *testing.T) {
	s := testServer(t, 1, 0, 0.01, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(text, "phpserve_request_latency_seconds_count 0") {
		t.Errorf("zero-sample histogram missing count 0:\n%s", text)
	}
	if strings.Contains(text, "NaN") {
		t.Errorf("cold scrape emitted NaN:\n%s", text)
	}
}

func TestPprofGated(t *testing.T) {
	s := testServer(t, 1, 0, 0, nil)
	ts := httptest.NewServer(s.handler())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
	ts.Close()

	s.pprofEnabled = true
	ts = httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof enabled: status %d", resp.StatusCode)
	}
}

func TestNotFoundAndHealthz(t *testing.T) {
	s := testServer(t, 1, 1, 0, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, string(body))
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"baseline", "mitigated", "accelerated"} {
		if _, err := configByName(name); err != nil {
			t.Errorf("configByName(%q) = %v", name, err)
		}
	}
	if _, err := configByName("turbo"); err == nil {
		t.Errorf("unknown config should error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
