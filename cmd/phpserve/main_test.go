package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

func testServer(t *testing.T, workers int) *server {
	t.Helper()
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := workload.NewPool(workers, cfg, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	warmPool(pool, 2, 0)
	return newServer(pool, "wordpress", "accelerated", 8)
}

func TestServeConcurrentRequests(t *testing.T) {
	s := testServer(t, 4)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(ts.URL + "/")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
				if len(body) == 0 || !strings.Contains(string(body), "<") {
					t.Errorf("response does not look like a page: %q", string(body)[:min(64, len(body))])
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != clients*perClient {
		t.Errorf("stats requests = %d, want %d", st.Requests, clients*perClient)
	}
	if st.Workers != 4 || st.App != "wordpress" || st.Config != "accelerated" {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.SimCycles <= 0 || st.CyclesPerRequest <= 0 {
		t.Errorf("no simulated cost recorded: %+v", st)
	}
	if st.LatencyP50Us <= 0 || st.LatencyP50Us > st.LatencyP99Us || st.LatencyP99Us > st.LatencyMaxUs {
		t.Errorf("latency percentiles out of order: %+v", st)
	}
	if st.ResponseBytes <= 0 {
		t.Errorf("no response bytes counted")
	}
}

func TestNotFoundAndHealthz(t *testing.T) {
	s := testServer(t, 1)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, string(body))
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"baseline", "mitigated", "accelerated"} {
		if _, err := configByName(name); err != nil {
			t.Errorf("configByName(%q) = %v", name, err)
		}
	}
	if _, err := configByName("turbo"); err == nil {
		t.Errorf("unknown config should error")
	}
}

func TestLatencyReservoirBounded(t *testing.T) {
	s := testServer(t, 1)
	s.mu.Lock()
	for i := 0; i < maxRetainedLatencies; i++ {
		s.latencies = append(s.latencies, 1)
	}
	s.mu.Unlock()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	if resp, err := http.Get(ts.URL + "/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	s.mu.Lock()
	n := len(s.latencies)
	s.mu.Unlock()
	if n > maxRetainedLatencies {
		t.Errorf("latency reservoir grew past cap: %d", n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
