package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/php"
	"repro/internal/serve"
	"repro/internal/workload"
)

// tieredTestServer builds a warmed scripted-workload server with the
// tier plane configured in the given mode, promotion tuned aggressively
// enough to cross the tier boundary during warmup.
func tieredTestServer(t *testing.T, mode php.TierMode) *server {
	t.Helper()
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceCapacity = 1024
	pool, err := workload.NewPoolSharedSeed(2, cfg, "phpscript-blog", 1)
	if err != nil {
		t.Fatal(err)
	}
	policy := php.TierPolicy{WindowRequests: 4, HotCalls: 1, HotWindows: 1, ColdCalls: 0, ColdWindows: 8}
	supported, err := pool.ConfigureScriptTier(mode, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !supported {
		t.Fatal("phpscript-blog should support script tiering")
	}
	warmPool(pool, 16, 0)
	col := obs.NewCollector(1, nil, nil)
	s := newServer(serve.NewScheduler(pool, serve.Config{QueueDepth: 64}), col, "phpscript-blog", "accelerated", 0)
	s.tier = mode.String()
	return s
}

// TestTierzEndpoint drives a tiered scripted server and checks /tierz
// reports promotion and per-tier call counts in both formats.
func TestTierzEndpoint(t *testing.T) {
	s := tieredTestServer(t, php.TierAuto)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/tierz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"mode auto", "promotions", "inline caches:", "render_post"} {
		if !strings.Contains(text, want) {
			t.Errorf("/tierz table missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/tierz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var tz tierzResponse
	if err := json.NewDecoder(resp.Body).Decode(&tz); err != nil {
		t.Fatal(err)
	}
	if !tz.Enabled || tz.Tier != "auto" {
		t.Errorf("tierz should report the enabled auto tier: %+v", tz)
	}
	if tz.Promotions == 0 || tz.BytecodeCalls == 0 {
		t.Errorf("warmup should have promoted hot functions: %+v", tz)
	}
	if tz.ICSites == 0 || tz.ICHits == 0 {
		t.Errorf("promoted code should exercise inline caches: %+v", tz)
	}
	if len(tz.Functions) == 0 {
		t.Error("tierz json should list per-function rows")
	}
}

// TestTierzDisabled checks the endpoint answers gracefully on a server
// without the tier plane.
func TestTierzDisabled(t *testing.T) {
	s := testServer(t, 1, 1, 0, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/tierz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "tiering off") {
		t.Errorf("untiered /tierz should say so: %q", body)
	}
}

// TestTierMetricsSeries checks the phpserve_tier_* series appear on
// /metrics for a tiered server and are absent on an untiered one.
func TestTierMetricsSeries(t *testing.T) {
	s := tieredTestServer(t, php.TierBytecode)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`phpserve_tier_requests_total{app="phpscript-blog",config="accelerated",tier="bytecode"}`,
		`phpserve_tier_bytecode_calls_total`,
		`phpserve_tier_interp_calls_total`,
		`phpserve_tier_ic_hits_total`,
		`phpserve_tier_promoted_functions`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed metric line: %q", line)
		}
	}

	untiered := testServer(t, 1, 1, 0, nil)
	ts2 := httptest.NewServer(untiered.handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "phpserve_tier_") {
		t.Error("untiered server should expose no phpserve_tier_* series")
	}
}
