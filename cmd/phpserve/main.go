// Command phpserve exposes a simulated PHP workload over HTTP, the way
// the paper's evaluation serves WordPress/Drupal/MediaWiki from a pool
// of HHVM request workers behind a web frontend (§5.1). Each incoming
// request goes through the serve.Scheduler request lifecycle — bounded
// admission queue, per-request deadline, overload shedding (503 +
// Retry-After when the queue is full or the server is draining, 504
// when the deadline expires first), graceful drain on SIGTERM/SIGINT —
// before rendering on a free worker (its own vm.Runtime). With -cache,
// a sharded TTL'd response cache with request coalescing sits between
// admission and worker acquisition: hits are answered without consuming
// a worker slot (the X-Cache header says HIT, MISS, or COALESCED), each
// request renders a stable page identity drawn from a Zipf popularity
// distribution (or forced with ?page=N), and hits charge a fixed
// simulated lookup cost so the /metrics category totals stay exact. The
// server carries the full observability stack: /stats for a human-readable
// JSON snapshot, /metrics in Prometheus text format (per-category cycle
// counters, latency + queue-wait histograms, shed counters, accelerator
// and cache counters), sampled per-request attribution spans written to
// a JSON-lines access log (sheds always logged), request-scoped span
// trees exported on /tracez (Chrome trace_event JSON or folded
// flamegraph stacks) with queue time as a "queued" span, a live
// windowed flat profile on /profilez, and optional net/http/pprof
// endpoints.
//
// Scripted workloads (apps backed by actual PHP source, e.g.
// phpscript-blog) additionally support a bytecode execution tier:
// -tier selects interp, auto (profile-guided promotion of hot
// functions to bytecode mid-run), or bytecode, and /tierz plus the
// phpserve_tier_* metric series expose per-function promotion state,
// call counts per tier, and inline-cache effectiveness aggregated
// across the pool.
//
// Usage:
//
//	phpserve [-addr :8080] [-app wordpress] [-config accelerated]
//	         [-workers 4] [-seed 1] [-warmup 300] [-ctxswitch 64]
//	         [-queue 64] [-timeout 0] [-drain 30s] [-arenacap 0]
//	         [-cache 0] [-cachettl 0] [-cacheshards 16]
//	         [-pages 512] [-zipf 1.0]
//	         [-sample 0.01] [-accesslog path|-] [-pprof] [-tracebuf 4096]
//	         [-treering 64] [-profepochs 16] [-tier interp|auto|bytecode]
//
// Endpoints:
//
//	GET /             render one page on a free worker (503/504 under overload)
//	GET /stats        JSON fleet statistics
//	GET /metrics      Prometheus text-format metrics
//	GET /tracez       last sampled span trees (trace_event JSON, folded, text)
//	GET /profilez     live windowed flat profile (table, folded, JSON)
//	GET /tierz        bytecode-tier state for scripted workloads (table, JSON)
//	GET /healthz      readiness: queue depth and drain state (503 while draining)
//	GET /debug/pprof/ Go profiling (only with -pprof)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/php"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// server routes requests through the scheduler's lifecycle to pool
// workers and aggregates serving-side statistics across all of them
// through an obs.Collector.
type server struct {
	sched          *serve.Scheduler
	pool           *workload.Pool
	col            *obs.Collector
	app            string
	config         string
	ctxSwitchEvery int
	pprofEnabled   bool
	start          time.Time

	// tier is the configured script execution tier ("" when the tier
	// plane is off — non-scripted workload or no -tier flag). Set once
	// at startup; /tierz and the phpserve_tier_* series activate on it.
	tier string

	// ids mints request correlation IDs for requests that arrive without
	// an X-Request-Id (standalone mode; behind phprouter the router's ID
	// wins so one ID spans both processes).
	ids *obs.IDSource

	// backendID is this process's cluster identity (-fpm/-backend), or
	// -1 standalone; it stamps the X-Backend header, /healthz, and the
	// access log so multi-process setups can tell processes apart.
	backendID int
	// dbWait is the simulated per-render database stall (-dbwait): the
	// worker is held for it, FPM-style, so backends model I/O-bound
	// pages. Zero disables it.
	dbWait time.Duration

	// cache and pageKeys are non-nil only with -cache: the response
	// cache in front of the pool and the server-side Zipf sampler that
	// assigns each request its page identity (unless ?page= overrides).
	// keyTable holds the precomputed "page:N" cache-key strings for the
	// configured page universe so the cached hot path never concatenates
	// a key per request (?page= beyond the table still falls back).
	cache    *cache.Cache
	pageKeys *workload.ZipfKeys
	keyTable []string

	// memMu guards the MemStats baseline behind the
	// phpserve_go_allocs_per_request gauges: each /metrics scrape reports
	// the Go-heap allocation rate over the requests served since the
	// previous scrape, measured after the Pool.Snapshot barrier so
	// in-flight renders are included in both deltas.
	memMu           sync.Mutex
	prevMallocs     uint64
	prevTotalAlloc  uint64
	prevRequests    int64
	memInitialized  bool
	allocsPerReq    float64
	allocBytesPerRq float64

	// live is the windowed flat profile behind /profilez and the
	// phpserve_profile_* gauges. Every scrape rotates a new epoch from a
	// coherent pool snapshot; liveMu serializes rotations (profile.Live
	// itself is not safe for concurrent use).
	liveMu sync.Mutex
	live   *profile.Live
}

func newServer(sched *serve.Scheduler, col *obs.Collector, app, config string, ctxSwitchEvery int) *server {
	return &server{
		sched:          sched,
		pool:           sched.Pool(),
		col:            col,
		ids:            obs.NewIDSource(),
		app:            app,
		config:         config,
		ctxSwitchEvery: ctxSwitchEvery,
		start:          time.Now(),
		backendID:      -1,
		live:           profile.NewLive(0, time.Now()),
	}
}

// backendLabel is the access-log/healthz form of the backend identity:
// the id in cluster mode, "-" standalone.
func (s *server) backendLabel() string {
	if s.backendID < 0 {
		return "-"
	}
	return strconv.Itoa(s.backendID)
}

// stampBackend adds the X-Backend header in cluster mode so responses
// (and the router's view of them) name the process that served them.
func (s *server) stampBackend(w http.ResponseWriter) {
	if s.backendID >= 0 {
		w.Header().Set("X-Backend", strconv.Itoa(s.backendID))
	}
}

// requestID resolves a render's correlation ID — the inbound
// X-Request-Id (sanitized) when a router or client sent one, else a
// locally minted ID — and echoes it on the response so the client (and
// the router's access log, and this process's, and the trace tree) all
// name the request the same way.
func (s *server) requestID(w http.ResponseWriter, r *http.Request) string {
	rid := obs.SanitizeRequestID(r.Header.Get(obs.HeaderRequestID))
	if rid == "" {
		rid = s.ids.Next()
	}
	w.Header().Set(obs.HeaderRequestID, rid)
	return rid
}

// markSampled stamps a retained span tree with the request ID and
// signals the upstream router via X-Trace-Sampled that a tree exists to
// stitch. Must run before the response body is written: the collector
// adds the tree to the ring first, so the router's post-response
// /tracez fetch always finds it.
func (s *server) markSampled(w http.ResponseWriter, tree *obs.Tree, rid string) {
	if tree == nil {
		return
	}
	tree.SetID(rid)
	w.Header().Set(obs.HeaderTraceSampled, "1")
}

// dbStall simulates the page's database round trips while holding the
// worker (the FPM blocking model). Returns the context error when the
// client gave up or the deadline expired mid-stall.
func (s *server) dbStall(ctx context.Context) error {
	if s.dbWait <= 0 {
		return nil
	}
	t := time.NewTimer(s.dbWait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleRender)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/profilez", s.handleProfilez)
	mux.HandleFunc("/tierz", s.handleTierz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// respBufs recycles uncached-path response buffers. A render's bytes
// are worker-owned and invalidated as soon as the scheduler releases
// the worker, so the handler copies them into a pooled buffer while the
// worker is still held, writes the response from the copy, and returns
// the buffer for the next request — no per-request allocation, no
// aliasing of recycled render memory.
var respBufs = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

func (s *server) handleRender(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if s.cache != nil {
		s.handleRenderCached(w, r)
		return
	}
	rid := s.requestID(w, r)
	start := time.Now()
	bufp := respBufs.Get().(*[]byte)
	defer respBufs.Put(bufp)
	var sp obs.Span
	wait, err := s.sched.Do(r.Context(), func(wk *workload.Worker) error {
		var page []byte
		var err error
		if s.col.ShouldSample() {
			page, sp, err = wk.ServeOneProfiledCtx(r.Context())
		} else {
			page, err = wk.ServeOneCtx(r.Context())
		}
		if err != nil {
			return err
		}
		if err := s.dbStall(r.Context()); err != nil {
			return err
		}
		// Copy before anything else can touch the worker: page aliases
		// its recycled render buffers.
		*bufp = append((*bufp)[:0], page...)
		if s.ctxSwitchEvery > 0 && wk.Served()%s.ctxSwitchEvery == 0 {
			wk.Runtime().ContextSwitch()
		}
		sp.Worker = wk.ID()
		return nil
	})
	meta := obs.RequestMeta{
		Path:      r.URL.RequestURI(),
		UserAgent: r.UserAgent(),
		RequestID: rid,
		QueueWait: wait,
	}
	if err != nil {
		s.shedResponse(w, err, meta)
		return
	}
	// Report latency as the client saw it: queueing for a free worker
	// included, not just the render; the tree gets the queue time as an
	// explicit "queued" span before the collector retains it.
	sp.Wall = time.Since(start)
	sp.Tree.AddQueueSpan(wait)
	s.markSampled(w, sp.Tree, rid)
	meta.Status = http.StatusOK
	s.col.ObserveHTTP(sp, len(*bufp), meta)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	s.stampBackend(w)
	w.Write(*bufp)
}

// handleRenderCached is the -cache render path: the request gets a page
// identity (?page=N override, else a server-side Zipf draw), then goes
// through Scheduler.DoCached so a hit or a coalesced wait never takes a
// worker. The outcome is surfaced in the X-Cache header; sampled hits
// get a synthetic zero-render "cache_hit" span tree carrying only the
// fixed lookup cost.
func (s *server) handleRenderCached(w http.ResponseWriter, r *http.Request) {
	rid := s.requestID(w, r)
	start := time.Now()
	pageID := queryInt(r, "page", -1)
	if pageID < 0 {
		pageID = s.pageKeys.Next()
	}
	sampled := s.col.ShouldSample()

	var sp obs.Span
	body, outcome, wait, err := s.sched.DoCached(r.Context(), s.cache, s.pageKey(pageID),
		func(wk *workload.Worker) ([]byte, error) {
			b, rsp, rerr := wk.ServePageSpanCtx(r.Context(), pageID, sampled)
			if rerr != nil {
				return nil, rerr
			}
			if rerr := s.dbStall(r.Context()); rerr != nil {
				return nil, rerr
			}
			rsp.Worker = wk.ID()
			sp = rsp
			if s.ctxSwitchEvery > 0 && wk.Served()%s.ctxSwitchEvery == 0 {
				wk.Runtime().ContextSwitch()
			}
			return b, nil
		})
	meta := obs.RequestMeta{
		Path:      r.URL.RequestURI(),
		UserAgent: r.UserAgent(),
		RequestID: rid,
		QueueWait: wait,
	}
	if err != nil {
		s.shedResponse(w, err, meta)
		return
	}
	wall := time.Since(start)
	switch outcome {
	case cache.Hit:
		if sampled {
			lookup := s.cache.LookupCostVec()
			sp = obs.Span{
				Worker:     -1,
				Sampled:    true,
				Cycles:     lookup.Total(),
				Categories: lookup,
				Tree:       obs.CacheHitTree(start, wall, lookup),
			}
		}
	case cache.Coalesced:
		// The render span belongs to the fill leader's request; this
		// waiter only contributes latency and byte counts.
		sp = obs.Span{Worker: -1}
	}
	sp.Wall = wall
	sp.Tree.AddQueueSpan(wait)
	s.markSampled(w, sp.Tree, rid)
	meta.Status = http.StatusOK
	s.col.ObserveHTTP(sp, len(body), meta)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("X-Cache", strings.ToUpper(outcome.String()))
	s.stampBackend(w)
	w.Write(body)
}

// retryAfterSeconds is the Retry-After hint on 503 sheds: long enough
// for a queue-full burst to clear, short enough that clients come back
// while a drain is still the likelier cause of free capacity elsewhere.
const retryAfterSeconds = 1

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the server produced a response. The status is
// never seen by that client (it is gone) — it exists for the access log
// and metrics, so abandoned requests stop masquerading as 504 timeouts.
const statusClientClosedRequest = 499

// shedResponse maps a lifecycle error to its HTTP answer — 503 +
// Retry-After for overload and drain (retryable), 504 for an expired
// deadline, 499 for a client that disconnected first — and records the
// shed in the collector (counter + access log line).
func (s *server) shedResponse(w http.ResponseWriter, err error, meta obs.RequestMeta) {
	var status int
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		meta.Outcome = "shed_overload"
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDraining):
		meta.Outcome = "draining"
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDeadline):
		meta.Outcome = "timeout"
		status = http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrCanceled):
		meta.Outcome = "canceled"
		status = statusClientClosedRequest
	default:
		meta.Outcome = "error"
		status = http.StatusInternalServerError
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	meta.Status = status
	s.col.ObserveShed(meta)
	http.Error(w, err.Error(), status)
}

// healthzResponse is the /healthz JSON shape: readiness plus the queue
// signals a load balancer or operator needs to interpret it.
type healthzResponse struct {
	Status      string `json:"status"` // ready | draining | drained
	Ready       bool   `json:"ready"`
	Backend     string `json:"backend"` // cluster backend id, "-" standalone
	Workers     int    `json:"workers"`
	WorkersBusy int    `json:"workers_busy"`
	QueueDepth  int    `json:"queue_depth"`
	QueueLimit  int    `json:"queue_limit"`
	ShedTotal   int64  `json:"shed_total"`
}

// handleHealthz reports readiness: 200 with status "ready" while
// admitting, 503 once draining starts so load balancers stop routing
// here while in-flight requests finish.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := s.sched.State()
	st := s.sched.Stats()
	resp := healthzResponse{
		Status:      state.String(),
		Ready:       state == serve.StateRunning,
		Backend:     s.backendLabel(),
		Workers:     s.pool.Size(),
		WorkersBusy: s.pool.Size() - s.pool.Idle(),
		QueueDepth:  s.sched.QueueDepth(),
		QueueLimit:  s.sched.QueueLimit(),
		ShedTotal:   st.Shed(),
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// finite clamps NaN and ±Inf to 0 so a zero-request or zero-cycle
// snapshot still encodes as valid JSON (encoding/json rejects
// non-finite floats outright, turning a cold /stats scrape into a 200
// with a half-written body).
func finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// statsResponse is the /stats JSON shape. Latencies are reported in
// microseconds; simulated totals cover the whole fleet since startup.
type statsResponse struct {
	App            string  `json:"app"`
	Config         string  `json:"config"`
	Workers        int     `json:"workers"`
	Requests       int64   `json:"requests"`
	SampledSpans   int64   `json:"sampled_spans"`
	ResponseBytes  int64   `json:"response_bytes"`
	UptimeSec      float64 `json:"uptime_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	State        string `json:"state"`
	QueueDepth   int    `json:"queue_depth"`
	QueueLimit   int    `json:"queue_limit"`
	ShedOverload int64  `json:"shed_overload"`
	ShedTimeout  int64  `json:"shed_timeout"`
	ShedCanceled int64  `json:"shed_canceled"`
	ShedDraining int64  `json:"shed_draining"`

	LatencyP50Us  int64 `json:"latency_p50_us"`
	LatencyP95Us  int64 `json:"latency_p95_us"`
	LatencyP99Us  int64 `json:"latency_p99_us"`
	LatencyMaxUs  int64 `json:"latency_max_us"`
	LatencyMeanUs int64 `json:"latency_mean_us"`

	SimCycles        float64 `json:"sim_cycles"`
	SimUops          float64 `json:"sim_uops"`
	SimEnergyPJ      float64 `json:"sim_energy_pj"`
	CyclesPerRequest float64 `json:"cycles_per_request"`

	SimCategoryCycles map[string]float64 `json:"sim_category_cycles"`
	SimCategoryShare  map[string]float64 `json:"sim_category_share"`

	HashTableHitRatio  float64 `json:"hashtable_hit_ratio"`
	HashMapRebuilds    int64   `json:"hashmap_rebuilds"`
	RegexCacheHitRatio float64 `json:"regex_cache_hit_ratio"`

	// Cache is present only when the response cache is enabled (-cache).
	Cache *cacheStatsResponse `json:"cache,omitempty"`
}

// cacheStatsResponse is the /stats response-cache block.
type cacheStatsResponse struct {
	Capacity  int     `json:"capacity"`
	Shards    int     `json:"shards"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Evictions int64   `json:"evictions"`
	Expired   int64   `json:"expired"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRatio  float64 `json:"hit_ratio"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.col.Snapshot()
	lat := workload.LatencyStatsFrom(snap.Latencies)
	// Pool.Snapshot drains the free list, so it also acts as a barrier:
	// in-flight renders finish before their costs are aggregated. The
	// cache's fixed lookup charges merge into the same meter so the
	// category totals cover hits too.
	ps := s.pool.Snapshot()
	if s.cache != nil {
		s.cache.MergeMeter(ps.Meter)
	}
	cats := ps.Meter.CategoryCyclesVec()
	total := cats.Total()

	up := time.Since(s.start).Seconds()
	sched := s.sched.Stats()
	resp := statsResponse{
		App:               s.app,
		Config:            s.config,
		Workers:           s.pool.Size(),
		State:             s.sched.State().String(),
		QueueDepth:        s.sched.QueueDepth(),
		QueueLimit:        s.sched.QueueLimit(),
		ShedOverload:      sched.ShedOverload,
		ShedTimeout:       sched.ShedDeadline,
		ShedCanceled:      sched.ShedCanceled,
		ShedDraining:      sched.ShedDraining,
		Requests:          snap.Requests,
		SampledSpans:      snap.SampledSpans,
		ResponseBytes:     snap.ResponseBytes,
		UptimeSec:         up,
		LatencyP50Us:      lat.P50.Microseconds(),
		LatencyP95Us:      lat.P95.Microseconds(),
		LatencyP99Us:      lat.P99.Microseconds(),
		LatencyMaxUs:      lat.Max.Microseconds(),
		LatencyMeanUs:     lat.Mean.Microseconds(),
		SimCycles:         total,
		SimUops:           ps.Meter.TotalUops(),
		SimEnergyPJ:       ps.Meter.TotalEnergy(),
		SimCategoryCycles: make(map[string]float64, sim.NumCategories),
		SimCategoryShare:  make(map[string]float64, sim.NumCategories),
		HashMapRebuilds:   ps.Accel.MapRebuilds,
	}
	if up > 0 {
		resp.RequestsPerSec = finite(float64(snap.Requests) / up)
	}
	if snap.Requests > 0 {
		resp.CyclesPerRequest = finite(total / float64(snap.Requests))
	}
	for _, c := range sim.Categories() {
		resp.SimCategoryCycles[c.String()] = cats[c]
		if total > 0 {
			resp.SimCategoryShare[c.String()] = finite(cats[c] / total)
		} else {
			resp.SimCategoryShare[c.String()] = 0
		}
	}
	resp.HashTableHitRatio = finite(ps.Accel.HashTable.HitRate())
	if ps.Accel.RegexLookups > 0 {
		resp.RegexCacheHitRatio = finite(float64(ps.Accel.RegexHits) / float64(ps.Accel.RegexLookups))
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &cacheStatsResponse{
			Capacity:  s.cache.Capacity(),
			Shards:    s.cache.Shards(),
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Coalesced: cs.Coalesced,
			Evictions: cs.Evictions,
			Expired:   cs.Expired,
			Entries:   cs.Entries,
			Bytes:     cs.Bytes,
			HitRatio:  finite(cs.HitRatio()),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleMetrics renders the Prometheus text-format exposition. Every
// series it exports is documented in docs/OPERATIONS.md.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.col.Snapshot()
	lat := workload.LatencyStatsFrom(snap.Latencies)
	ps := s.pool.Snapshot()
	if s.cache != nil {
		// Lookup charges land in the same meter, so the per-category
		// cycle totals stay exact with the cache on.
		s.cache.MergeMeter(ps.Meter)
	}
	cats := ps.Meter.CategoryCyclesVec()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewEncoder(w)
	base := []obs.Label{{Name: "app", Value: s.app}, {Name: "config", Value: s.config}}

	e.Counter("phpserve_requests_total",
		"Requests served since startup.",
		obs.Sample{Labels: base, Value: float64(snap.Requests)})
	e.Counter("phpserve_response_bytes_total",
		"Response body bytes written since startup.",
		obs.Sample{Labels: base, Value: float64(snap.ResponseBytes)})
	e.Counter("phpserve_sampled_spans_total",
		"Requests that carried a per-request attribution span.",
		obs.Sample{Labels: base, Value: float64(snap.SampledSpans)})
	e.Gauge("phpserve_uptime_seconds",
		"Seconds since the server started.",
		obs.Sample{Value: time.Since(s.start).Seconds()})
	e.Gauge("phpserve_workers",
		"Configured pool size (request workers).",
		obs.Sample{Value: float64(s.pool.Size())})
	e.Gauge("phpserve_workers_busy",
		"Workers currently serving a request (instantaneous).",
		obs.Sample{Value: float64(s.pool.Size() - s.pool.Idle())})

	sched := s.sched.Stats()
	e.Gauge("phpserve_queue_depth",
		"Admitted requests waiting for a worker (instantaneous).",
		obs.Sample{Value: float64(s.sched.QueueDepth())})
	e.Gauge("phpserve_queue_limit",
		"Admission queue capacity beyond the worker count (-queue).",
		obs.Sample{Value: float64(s.sched.QueueLimit())})
	draining := 0.0
	if s.sched.State() != serve.StateRunning {
		draining = 1
	}
	e.Gauge("phpserve_draining",
		"1 once the server stopped admitting (draining or drained), else 0.",
		obs.Sample{Value: draining})
	e.Counter("phpserve_shed_total",
		"Requests rejected by the lifecycle layer, by reason.",
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: "overload"}}, Value: float64(sched.ShedOverload)},
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: "timeout"}}, Value: float64(sched.ShedDeadline)},
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: "canceled"}}, Value: float64(sched.ShedCanceled)},
		obs.Sample{Labels: []obs.Label{{Name: "reason", Value: "draining"}}, Value: float64(sched.ShedDraining)})
	e.Histogram("phpserve_queue_wait_seconds",
		"Time admitted requests spent waiting for a worker.", nil, sched.QueueWait)

	e.Histogram("phpserve_request_latency_seconds",
		"Request wall latency, queueing included.", nil, snap.Latency)
	e.Summary("phpserve_request_latency_summary_seconds",
		"Recent-request latency quantiles from the bounded reservoir.",
		nil,
		[]obs.Quantile{
			{Q: 0.5, Value: lat.P50.Seconds()},
			{Q: 0.95, Value: lat.P95.Seconds()},
			{Q: 0.99, Value: lat.P99.Seconds()},
		},
		lat.Mean.Seconds()*float64(lat.Count), uint64(lat.Count))

	catSamples := make([]obs.Sample, 0, sim.NumCategories)
	for _, c := range sim.Categories() {
		catSamples = append(catSamples, obs.Sample{
			Labels: []obs.Label{{Name: "category", Value: c.String()}},
			Value:  cats[c],
		})
	}
	e.Counter("phpserve_sim_cycles_total",
		"Simulated cycles by activity category, fleet-wide since warmup.",
		catSamples...)
	e.Counter("phpserve_sim_uops_total",
		"Simulated micro-ops executed on the general-purpose cores.",
		obs.Sample{Value: ps.Meter.TotalUops()})
	e.Counter("phpserve_sim_energy_picojoules_total",
		"Simulated energy in picojoules (core + accelerators).",
		obs.Sample{Value: ps.Meter.TotalEnergy()})

	accelCyc := make([]obs.Sample, 0, 4)
	accelCalls := make([]obs.Sample, 0, 4)
	for _, k := range sim.AccelKinds() {
		l := []obs.Label{{Name: "accel", Value: k.String()}}
		accelCyc = append(accelCyc, obs.Sample{Labels: l, Value: ps.Meter.AccelCycles(k)})
		accelCalls = append(accelCalls, obs.Sample{Labels: l, Value: float64(ps.Meter.AccelCalls(k))})
	}
	e.Counter("phpserve_accel_cycles_total",
		"Cycles spent inside each accelerator datapath.", accelCyc...)
	e.Counter("phpserve_accel_calls_total",
		"Invocations of each accelerator.", accelCalls...)

	ht := ps.Accel.HashTable
	e.Counter("phpserve_hashtable_gets_total",
		"Hardware hash table GET requests.", obs.Sample{Value: float64(ht.Gets)})
	e.Counter("phpserve_hashtable_get_hits_total",
		"Hardware hash table GETs served without software.", obs.Sample{Value: float64(ht.GetHits)})
	e.Counter("phpserve_hashtable_sets_total",
		"Hardware hash table SET requests.", obs.Sample{Value: float64(ht.Sets)})
	e.Counter("phpserve_hashtable_writebacks_total",
		"Key/value pairs written back to software maps.", obs.Sample{Value: float64(ht.Writebacks)})
	e.Gauge("phpserve_hashtable_hit_ratio",
		"Hardware hash table GET hit fraction (0 when no GETs).",
		obs.Sample{Value: finite(ht.HitRate())})
	e.Counter("phpserve_hashmap_rebuilds_total",
		"Stale hash-index rebuilds (coherence events) across all workers.",
		obs.Sample{Value: float64(ps.Accel.MapRebuilds)})

	e.Counter("phpserve_regex_cache_lookups_total",
		"Regexp manager pattern-cache probes.",
		obs.Sample{Value: float64(ps.Accel.RegexLookups)})
	e.Counter("phpserve_regex_cache_hits_total",
		"Regexp manager probes that found a compiled FSM.",
		obs.Sample{Value: float64(ps.Accel.RegexHits)})
	ratio := 0.0
	if ps.Accel.RegexLookups > 0 {
		ratio = finite(float64(ps.Accel.RegexHits) / float64(ps.Accel.RegexLookups))
	}
	e.Gauge("phpserve_regex_cache_hit_ratio",
		"Regexp manager cache hit fraction (0 when no lookups).",
		obs.Sample{Value: ratio})

	if s.cache != nil {
		cs := s.cache.Stats()
		e.Counter("phpserve_cache_hits_total",
			"Response cache lookups answered from a fresh cached entry.",
			obs.Sample{Value: float64(cs.Hits)})
		e.Counter("phpserve_cache_misses_total",
			"Response cache lookups that rendered on a worker and filled.",
			obs.Sample{Value: float64(cs.Misses)})
		e.Counter("phpserve_cache_coalesced_total",
			"Response cache lookups that waited on another request's in-flight render.",
			obs.Sample{Value: float64(cs.Coalesced)})
		e.Counter("phpserve_cache_evictions_total",
			"Response cache entries evicted by the LRU capacity bound.",
			obs.Sample{Value: float64(cs.Evictions)})
		e.Counter("phpserve_cache_expired_total",
			"Response cache entries dropped because their TTL passed.",
			obs.Sample{Value: float64(cs.Expired)})
		e.Gauge("phpserve_cache_entries",
			"Responses currently cached (instantaneous).",
			obs.Sample{Value: float64(cs.Entries)})
		e.Gauge("phpserve_cache_bytes",
			"Body bytes currently cached (instantaneous).",
			obs.Sample{Value: float64(cs.Bytes)})
		e.Gauge("phpserve_cache_hit_ratio",
			"Fraction of cache lookups answered from a cached entry (0 when no lookups).",
			obs.Sample{Value: finite(cs.HitRatio())})
	}

	if ps.Trace != nil {
		totals := ps.Trace.KindTotals()
		kinds := make([]obs.Sample, 0, trace.NumKinds)
		for k := 0; k < trace.NumKinds; k++ {
			kinds = append(kinds, obs.Sample{
				Labels: []obs.Label{{Name: "kind", Value: trace.Kind(k).String()}},
				Value:  float64(totals[k]),
			})
		}
		e.Counter("phpserve_trace_events_total",
			"Operation trace events recorded, by kind, since warmup.", kinds...)
	}

	// Go-heap allocation rates over the inter-scrape window: the
	// operational view of the arena-per-request serve path (near zero in
	// steady state; a jump means a new allocation crept onto it).
	allocsPR, allocBytesPR := s.goMemGauges(snap.Requests)
	e.Gauge("phpserve_go_allocs_per_request",
		"Go heap allocations per served request since the previous /metrics scrape.",
		obs.Sample{Labels: base, Value: finite(allocsPR)})
	e.Gauge("phpserve_go_alloc_bytes_per_request",
		"Go heap bytes allocated per served request since the previous /metrics scrape.",
		obs.Sample{Labels: base, Value: finite(allocBytesPR)})

	// The paper's Fig. 1 headline numbers as live gauges, computed over
	// the same windowed profile /profilez reports.
	lp, _ := s.observeLive(ps.Meter)
	e.Gauge("phpserve_profile_hottest_frac",
		"Hottest leaf function's share of windowed cycles (Fig. 1 headline).",
		obs.Sample{Labels: base, Value: finite(lp.HottestFrac())})
	e.Gauge("phpserve_profile_funcs_for_65",
		"Hottest functions needed to cover 65% of windowed cycles (Fig. 1 headline).",
		obs.Sample{Labels: base, Value: float64(lp.FuncsForFrac(0.65))})
	e.Gauge("phpserve_profile_functions",
		"Distinct leaf functions with cycles in the profile window.",
		obs.Sample{Labels: base, Value: float64(lp.NumFunctions())})
	if s.col.TreeRing() != nil {
		e.Counter("phpserve_trace_trees_total",
			"Sampled request span trees ever retained in the /tracez ring.",
			obs.Sample{Labels: base, Value: float64(s.col.TreeRing().Total())})
	}

	s.tierMetrics(e, base)
}

// pageKey returns the cache key for a page identity, from the
// precomputed table for the configured page universe (the hot path; the
// Zipf sampler only draws ids inside it) or by concatenation for an
// out-of-range ?page= override.
func (s *server) pageKey(id int) string {
	if id >= 0 && id < len(s.keyTable) {
		return s.keyTable[id]
	}
	return "page:" + strconv.Itoa(id)
}

// goMemGauges reports Go heap allocation rates — allocations and bytes
// per served request — over the window since the previous /metrics
// scrape. The caller reads MemStats after the Pool.Snapshot barrier, so
// renders in flight at scrape time are in both the allocation and the
// request delta. The first scrape establishes the baseline (and reports
// 0); a scrape window with no served requests repeats the last value
// rather than dividing by zero.
func (s *server) goMemGauges(requests int64) (allocsPerReq, bytesPerReq float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.memMu.Lock()
	defer s.memMu.Unlock()
	if dr := requests - s.prevRequests; s.memInitialized && dr > 0 {
		s.allocsPerReq = float64(ms.Mallocs-s.prevMallocs) / float64(dr)
		s.allocBytesPerRq = float64(ms.TotalAlloc-s.prevTotalAlloc) / float64(dr)
	}
	s.prevMallocs, s.prevTotalAlloc, s.prevRequests = ms.Mallocs, ms.TotalAlloc, requests
	s.memInitialized = true
	return s.allocsPerReq, s.allocBytesPerRq
}

// observeLive rotates a fresh epoch into the live profile from an
// already-taken coherent pool snapshot's meter and returns the current
// window. Both /profilez and /metrics route through here, so either
// scrape advances the window.
func (s *server) observeLive(mt *sim.Meter) (profile.Profile, profile.WindowInfo) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	s.live.Observe(mt, time.Now())
	return s.live.Window()
}

// queryInt parses an integer query parameter, falling back to def when
// absent or malformed.
func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// handleTracez exports the last sampled span trees from the bounded
// ring through the shared obs.ServeTracez handler. Parameters: n (last
// K trees, default 16, <=0 for all retained), rid (filter to one
// request's correlation ID — how the router fetches a backend tree for
// stitching), format=json (Chrome trace_event, default) | folded
// (flamegraph stacks) | text (indented tree) | tree (raw []*obs.Tree
// JSON interchange).
func (s *server) handleTracez(w http.ResponseWriter, r *http.Request) {
	ring := s.col.TreeRing()
	if ring == nil {
		http.Error(w, "tracez: span-tree retention disabled (-treering 0)", http.StatusNotFound)
		return
	}
	obs.ServeTracez(w, r, ring)
}

// profilezResponse is the /profilez?format=json shape.
type profilezResponse struct {
	App           string             `json:"app"`
	Config        string             `json:"config"`
	WindowSince   string             `json:"window_since"`
	WindowUntil   string             `json:"window_until"`
	WindowEpochs  int                `json:"window_epochs"`
	SinceBoot     bool               `json:"since_boot"`
	TotalCycles   float64            `json:"total_cycles"`
	Functions     int                `json:"functions"`
	HottestFrac   float64            `json:"hottest_frac"`
	FuncsFor65    int                `json:"funcs_for_65"`
	CDF           map[string]float64 `json:"cdf"`
	CategoryShare map[string]float64 `json:"category_share"`
	Top           []profilezEntry    `json:"top"`
}

type profilezEntry struct {
	Name     string  `json:"name"`
	Category string  `json:"category"`
	Cycles   float64 `json:"cycles"`
	Frac     float64 `json:"frac"`
	Cum      float64 `json:"cum"`
}

// cdfPoints are the function counts the table and JSON forms report the
// cumulative distribution at (the Fig. 1 x-axis landmarks).
var cdfPoints = []int{1, 10, 50, 100}

// handleProfilez serves the live windowed flat profile — the paper's
// Fig. 1/Fig. 4 analysis over current traffic. Parameters: n (top-N
// rows, default 30), format=table (default) | folded (flamegraph
// stacks) | json.
func (s *server) handleProfilez(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Snapshot()
	p, info := s.observeLive(ps.Meter)
	n := queryInt(r, "n", 30)

	switch format := r.URL.Query().Get("format"); format {
	case "", "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		window := "since boot"
		if !info.SinceBoot {
			window = fmt.Sprintf("last %s (%d epochs)", info.Until.Sub(info.Since).Round(time.Millisecond), info.Epochs)
		}
		fmt.Fprintf(w, "live flat profile: %s (%s), window %s\n", s.app, s.config, window)
		fmt.Fprintf(w, "functions: %d   total cycles: %.0f\n", p.NumFunctions(), p.Total)
		hottest := "-"
		if p.NumFunctions() > 0 {
			hottest = p.Entries[0].Name
		}
		fmt.Fprintf(w, "hottest: %s %.2f%%   functions for 65%%: %d\n",
			hottest, 100*finite(p.HottestFrac()), p.FuncsForFrac(0.65))
		cdf := p.CDF(cdfPoints)
		fmt.Fprint(w, "cdf:")
		for i, np := range cdfPoints {
			fmt.Fprintf(w, " top%d=%.1f%%", np, 100*cdf[i])
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "categories:")
		shares := p.CategoryShares()
		for _, c := range sim.Categories() {
			if shares[c] > 0 {
				fmt.Fprintf(w, " %s=%.1f%%", c, 100*shares[c])
			}
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
		fmt.Fprint(w, p.Render(n))
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, p.Folded())
	case "json":
		resp := profilezResponse{
			App:           s.app,
			Config:        s.config,
			WindowSince:   info.Since.UTC().Format(time.RFC3339Nano),
			WindowUntil:   info.Until.UTC().Format(time.RFC3339Nano),
			WindowEpochs:  info.Epochs,
			SinceBoot:     info.SinceBoot,
			TotalCycles:   p.Total,
			Functions:     p.NumFunctions(),
			HottestFrac:   finite(p.HottestFrac()),
			FuncsFor65:    p.FuncsForFrac(0.65),
			CDF:           map[string]float64{},
			CategoryShare: map[string]float64{},
		}
		cdf := p.CDF(cdfPoints)
		for i, np := range cdfPoints {
			resp.CDF[strconv.Itoa(np)] = finite(cdf[i])
		}
		for c, share := range p.CategoryShares() {
			resp.CategoryShare[c.String()] = finite(share)
		}
		for _, e := range p.TopN(n) {
			resp.Top = append(resp.Top, profilezEntry{
				Name: e.Name, Category: e.Category.String(),
				Cycles: e.Cycles, Frac: e.Frac, Cum: e.Cum,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	default:
		http.Error(w, fmt.Sprintf("profilez: unknown format %q (want table, folded, or json)", format), http.StatusBadRequest)
	}
}

// configByName maps the CLI -config choice to a vm.Config.
func configByName(name string) (vm.Config, error) {
	switch name {
	case "baseline":
		return vm.Config{}, nil
	case "mitigated":
		return vm.Config{Mitigations: sim.AllMitigations()}, nil
	case "accelerated":
		return vm.Config{Mitigations: sim.AllMitigations(), Features: isa.AllAccelerators()}, nil
	}
	return vm.Config{}, fmt.Errorf("phpserve: unknown -config %q (want baseline, mitigated, or accelerated)", name)
}

// warmPool serves warmup requests on every worker so the server answers
// steady-state traffic from the start, then discards the warmup costs.
func warmPool(p *workload.Pool, warmup, ctxSwitchEvery int) {
	if warmup <= 0 {
		return
	}
	p.Run(workload.LoadGenerator{Warmup: warmup, Requests: 0, ContextSwitchEvery: ctxSwitchEvery}, 0)
}

// accessLogWriter resolves the -accesslog flag: "" disables, "-" is
// stdout, anything else is appended to as a file. The returned closer
// flushes the file on drain (nil-safe, nil for stdout/disabled).
func accessLogWriter(path string) (io.Writer, io.Closer, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stdout, nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}

// validateFlags fails fast on out-of-range flag values instead of
// silently clamping or panicking after warmup has already run.
func validateFlags(workers, warmup, queue int, sample float64, timeout, drain time.Duration) error {
	if workers <= 0 {
		return fmt.Errorf("phpserve: -workers must be positive, got %d", workers)
	}
	if warmup < 0 {
		return fmt.Errorf("phpserve: -warmup must be >= 0, got %d", warmup)
	}
	if queue < 0 {
		return fmt.Errorf("phpserve: -queue must be >= 0, got %d", queue)
	}
	if sample < 0 || sample > 1 {
		return fmt.Errorf("phpserve: -sample must be in [0,1], got %g", sample)
	}
	if timeout < 0 {
		return fmt.Errorf("phpserve: -timeout must be >= 0, got %v", timeout)
	}
	if drain < 0 {
		return fmt.Errorf("phpserve: -drain must be >= 0, got %v", drain)
	}
	return nil
}

// validateClusterFlags checks the -fpm flag family. The backend id may
// be -1 (standalone) or any non-negative id; -dbwait models time, so it
// cannot be negative.
func validateClusterFlags(backend int, dbwait time.Duration) error {
	if backend < -1 {
		return fmt.Errorf("phpserve: -backend must be >= 0 (or unset), got %d", backend)
	}
	if dbwait < 0 {
		return fmt.Errorf("phpserve: -dbwait must be >= 0, got %v", dbwait)
	}
	return nil
}

// validateCacheFlags checks the -cache flag family; pages and zipf only
// matter (and are only validated) when the cache is enabled.
func validateCacheFlags(capacity, shards, pages int, ttl time.Duration, zipf float64) error {
	if capacity < 0 {
		return fmt.Errorf("phpserve: -cache must be >= 0, got %d", capacity)
	}
	if capacity == 0 {
		return nil
	}
	if shards <= 0 {
		return fmt.Errorf("phpserve: -cacheshards must be positive, got %d", shards)
	}
	if ttl < 0 {
		return fmt.Errorf("phpserve: -cachettl must be >= 0, got %v", ttl)
	}
	if pages <= 0 {
		return fmt.Errorf("phpserve: -pages must be positive with -cache, got %d", pages)
	}
	if zipf <= 0 {
		return fmt.Errorf("phpserve: -zipf must be positive with -cache, got %g", zipf)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	app := flag.String("app", "wordpress", "workload to serve (wordpress, drupal, mediawiki)")
	config := flag.String("config", "accelerated", "core config: baseline, mitigated, accelerated")
	workers := flag.Int("workers", 4, "request workers (independent runtimes)")
	seed := flag.Int64("seed", 1, "workload seed (worker i uses seed+i)")
	warmup := flag.Int("warmup", 300, "warmup requests per worker before listening")
	ctxSwitch := flag.Int("ctxswitch", 64, "context switch every n requests per worker (0 disables)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the worker count (0 sheds whenever all workers are busy)")
	timeout := flag.Duration("timeout", 0, "per-request deadline from admission (0 disables; expired requests get 504)")
	drainTO := flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests on SIGTERM/SIGINT")
	arenaCap := flag.Int("arenacap", 0, "per-worker request-arena bytes retained across requests (0 retains everything; lower trades allocation churn for idle footprint)")
	cacheCap := flag.Int("cache", 0, "response cache capacity in entries (0 disables the cache)")
	cacheTTL := flag.Duration("cachettl", 0, "response cache entry time-to-live (0 never expires)")
	cacheShards := flag.Int("cacheshards", cache.DefaultShards, "response cache shard count (rounded up to a power of two)")
	pages := flag.Int("pages", 512, "distinct page identities requests draw from when the cache is on")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent for server-drawn page identities (cache mode)")
	sample := flag.Float64("sample", 0.01, "per-request span sampling rate in [0,1]")
	accessLog := flag.String("accesslog", "", "JSON-lines access log for sampled spans and sheds (path, - for stdout, empty disables)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceBuf := flag.Int("tracebuf", 4096, "per-worker operation trace ring size (0 unbounded — leaks on a long-running server; -1 disables tracing)")
	treeRing := flag.Int("treering", 64, "sampled span trees retained for /tracez (0 disables)")
	profEpochs := flag.Int("profepochs", profile.DefaultLiveEpochs, "cumulative profile epochs retained; the /profilez window spans up to profepochs-1 scrapes")
	fpm := flag.Bool("fpm", false, "run as a cluster backend process (FPM-style, behind phprouter): implies -backend 0 unless set")
	backend := flag.Int("backend", -1, "cluster backend id stamped on X-Backend, /healthz, and access-log lines (-1 standalone)")
	listen := flag.String("listen", "", "backend listen address; overrides -addr (the flag phprouter's spawner sets per backend)")
	dbwait := flag.Duration("dbwait", 0, "simulated per-render database stall, held on the worker FPM-style (0 disables)")
	tier := flag.String("tier", "", "script execution tier for scripted workloads: interp, auto (profile-guided promotion), or bytecode (empty leaves the tier plane off)")
	flag.Parse()

	if err := validateFlags(*workers, *warmup, *queue, *sample, *timeout, *drainTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateClusterFlags(*backend, *dbwait); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if *fpm && *backend < 0 {
		*backend = 0
	}
	if *listen != "" {
		*addr = *listen
	}
	if err := validateCacheFlags(*cacheCap, *cacheShards, *pages, *cacheTTL, *zipf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := configByName(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	cfg.TraceCapacity = *traceBuf
	if *arenaCap < 0 {
		fmt.Fprintf(os.Stderr, "phpserve: -arenacap must be >= 0, got %d\n", *arenaCap)
		flag.Usage()
		os.Exit(2)
	}
	cfg.ArenaRetain = *arenaCap
	// Cache mode needs page identity to be worker-independent, so every
	// worker renders from the same seed; without the cache, workers keep
	// their historical per-worker seeds (seed+i) for varied traffic.
	newPool := workload.NewPool
	if *cacheCap > 0 {
		newPool = workload.NewPoolSharedSeed
	}
	pool, err := newPool(*workers, cfg, *app, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logW, logC, err := accessLogWriter(*accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Configure the tier before warmup, so auto mode's promotion
	// windows start accumulating on the warmup traffic and the server
	// opens for business already tiered-up.
	if *tier != "" {
		mode, err := php.ParseTierMode(*tier)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phpserve:", err)
			flag.Usage()
			os.Exit(2)
		}
		supported, err := pool.ConfigureScriptTier(mode, php.DefaultTierPolicy())
		if err != nil {
			fmt.Fprintln(os.Stderr, "phpserve:", err)
			os.Exit(2)
		}
		if !supported {
			fmt.Fprintf(os.Stderr, "phpserve: -tier requires a scripted workload; %s is a Go-coded recipe\n", *app)
			os.Exit(2)
		}
		fmt.Printf("phpserve: script tier %s\n", mode)
	}

	fmt.Printf("phpserve: warming %d %s worker(s) (%d requests each, %s core)\n",
		*workers, *app, *warmup, *config)
	warmPool(pool, *warmup, *ctxSwitch)

	col := obs.NewCollector(*sample, logW, nil)
	if *treeRing > 0 {
		col.SetTreeRing(obs.NewTreeRing(*treeRing))
	}
	sched := serve.NewScheduler(pool, serve.Config{QueueDepth: *queue, Timeout: *timeout})
	srv := newServer(sched, col, *app, *config, *ctxSwitch)
	srv.live = profile.NewLive(*profEpochs, time.Now())
	srv.pprofEnabled = *pprofFlag
	srv.tier = *tier
	srv.backendID = *backend
	srv.dbWait = *dbwait
	col.SetBackend(srv.backendLabel())
	if *cacheCap > 0 {
		if !pool.SupportsPages() {
			fmt.Fprintf(os.Stderr, "phpserve: -cache requires a workload with page identity; %s has none\n", *app)
			os.Exit(2)
		}
		srv.cache = cache.New(cache.Config{Capacity: *cacheCap, Shards: *cacheShards, TTL: *cacheTTL})
		srv.pageKeys, err = workload.NewZipfKeys(*seed, *zipf, *pages)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		srv.keyTable = make([]string, *pages)
		for i := range srv.keyTable {
			srv.keyTable[i] = "page:" + strconv.Itoa(i)
		}
		fmt.Printf("phpserve: response cache on: %d entries, %d shards, ttl %v, %d pages, zipf %g\n",
			srv.cache.Capacity(), srv.cache.Shards(), *cacheTTL, *pages, *zipf)
	}
	fmt.Printf("phpserve: listening on %s (queue %d, timeout %v, sample rate %g", *addr, *queue, *timeout, *sample)
	if *backend >= 0 {
		fmt.Printf(", backend %d", *backend)
	}
	if *dbwait > 0 {
		fmt.Printf(", dbwait %v", *dbwait)
	}
	if *pprofFlag {
		fmt.Print(", pprof on")
	}
	fmt.Println(")")

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: stop admitting (new requests shed 503), let
	// in-flight requests finish within the grace period, stop the
	// listener, then flush what the run accumulated.
	fmt.Printf("phpserve: draining (grace %v)\n", *drainTO)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := sched.Drain(dctx)
	httpSrv.Shutdown(dctx)
	snap := col.Snapshot()
	st := sched.Stats()
	fmt.Printf("phpserve: drained: served %d requests (%d sampled), shed %d (overload %d, timeout %d, canceled %d, draining %d)\n",
		snap.Requests, snap.SampledSpans, st.Shed(), st.ShedOverload, st.ShedDeadline, st.ShedCanceled, st.ShedDraining)
	if srv.cache != nil {
		cs := srv.cache.Stats()
		fmt.Printf("phpserve: cache: %d hits, %d misses, %d coalesced, %d evictions, hit ratio %.3f\n",
			cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.HitRatio())
	}
	if logC != nil {
		logC.Close()
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "phpserve: drain incomplete after %v: %v\n", *drainTO, drainErr)
		os.Exit(1)
	}
}
