// Command phpserve exposes a simulated PHP workload over HTTP, the way
// the paper's evaluation serves WordPress/Drupal/MediaWiki from a pool
// of HHVM request workers behind a web frontend (§5.1). Each incoming
// request is routed to a free worker (its own vm.Runtime); /stats
// reports fleet-level simulated cost totals and wall-latency
// percentiles so an external load generator (ab, wrk, hey) can drive
// the server and the simulated architecture side by side.
//
// Usage:
//
//	phpserve [-addr :8080] [-app wordpress] [-config accelerated]
//	         [-workers 4] [-seed 1] [-warmup 300] [-ctxswitch 64]
//
// Endpoints:
//
//	GET /        render one page on a free worker
//	GET /stats   JSON fleet statistics
//	GET /healthz liveness probe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// maxRetainedLatencies bounds the latency reservoir; beyond it the
// oldest half is discarded so /stats percentiles track recent traffic.
const maxRetainedLatencies = 1 << 16

// server routes requests to free pool workers and aggregates
// serving-side statistics across all of them.
type server struct {
	pool           *workload.Pool
	app            string
	config         string
	ctxSwitchEvery int
	start          time.Time

	mu        sync.Mutex
	requests  int64
	respBytes int64
	latencies []time.Duration
}

func newServer(pool *workload.Pool, app, config string, ctxSwitchEvery int) *server {
	return &server{
		pool:           pool,
		app:            app,
		config:         config,
		ctxSwitchEvery: ctxSwitchEvery,
		start:          time.Now(),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleRender)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *server) handleRender(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	start := time.Now()
	wk := s.pool.Acquire()
	page := wk.ServeOne()
	if s.ctxSwitchEvery > 0 && wk.Served()%s.ctxSwitchEvery == 0 {
		wk.Runtime().ContextSwitch()
	}
	s.pool.Release(wk)
	elapsed := time.Since(start)

	s.mu.Lock()
	s.requests++
	s.respBytes += int64(len(page))
	if len(s.latencies) >= maxRetainedLatencies {
		s.latencies = append(s.latencies[:0], s.latencies[len(s.latencies)/2:]...)
	}
	s.latencies = append(s.latencies, elapsed)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(page)
}

// statsResponse is the /stats JSON shape. Latencies are reported in
// microseconds; simulated totals cover the whole fleet since startup.
type statsResponse struct {
	App            string  `json:"app"`
	Config         string  `json:"config"`
	Workers        int     `json:"workers"`
	Requests       int64   `json:"requests"`
	ResponseBytes  int64   `json:"response_bytes"`
	UptimeSec      float64 `json:"uptime_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	LatencyP50Us  int64 `json:"latency_p50_us"`
	LatencyP95Us  int64 `json:"latency_p95_us"`
	LatencyP99Us  int64 `json:"latency_p99_us"`
	LatencyMaxUs  int64 `json:"latency_max_us"`
	LatencyMeanUs int64 `json:"latency_mean_us"`

	SimCycles        float64 `json:"sim_cycles"`
	SimUops          float64 `json:"sim_uops"`
	SimEnergyPJ      float64 `json:"sim_energy_pj"`
	CyclesPerRequest float64 `json:"cycles_per_request"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reqs := s.requests
	bytes := s.respBytes
	lat := workload.LatencyStatsFrom(s.latencies)
	s.mu.Unlock()

	// MergedMeter drains the free list, so it also acts as a barrier:
	// in-flight renders finish before their costs are aggregated.
	mt := s.pool.MergedMeter()

	up := time.Since(s.start).Seconds()
	resp := statsResponse{
		App:           s.app,
		Config:        s.config,
		Workers:       s.pool.Size(),
		Requests:      reqs,
		ResponseBytes: bytes,
		UptimeSec:     up,
		LatencyP50Us:  lat.P50.Microseconds(),
		LatencyP95Us:  lat.P95.Microseconds(),
		LatencyP99Us:  lat.P99.Microseconds(),
		LatencyMaxUs:  lat.Max.Microseconds(),
		LatencyMeanUs: lat.Mean.Microseconds(),
		SimCycles:     mt.TotalCycles(),
		SimUops:       mt.TotalUops(),
		SimEnergyPJ:   mt.TotalEnergy(),
	}
	if up > 0 {
		resp.RequestsPerSec = float64(reqs) / up
	}
	if reqs > 0 {
		resp.CyclesPerRequest = resp.SimCycles / float64(reqs)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// configByName maps the CLI -config choice to a vm.Config.
func configByName(name string) (vm.Config, error) {
	switch name {
	case "baseline":
		return vm.Config{}, nil
	case "mitigated":
		return vm.Config{Mitigations: sim.AllMitigations()}, nil
	case "accelerated":
		return vm.Config{Mitigations: sim.AllMitigations(), Features: isa.AllAccelerators()}, nil
	}
	return vm.Config{}, fmt.Errorf("phpserve: unknown -config %q (want baseline, mitigated, or accelerated)", name)
}

// warmPool serves warmup requests on every worker so the server answers
// steady-state traffic from the start, then discards the warmup costs.
func warmPool(p *workload.Pool, warmup, ctxSwitchEvery int) {
	if warmup <= 0 {
		return
	}
	p.Run(workload.LoadGenerator{Warmup: warmup, Requests: 0, ContextSwitchEvery: ctxSwitchEvery}, 0)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	app := flag.String("app", "wordpress", "workload to serve (wordpress, drupal, mediawiki)")
	config := flag.String("config", "accelerated", "core config: baseline, mitigated, accelerated")
	workers := flag.Int("workers", 4, "request workers (independent runtimes)")
	seed := flag.Int64("seed", 1, "workload seed (worker i uses seed+i)")
	warmup := flag.Int("warmup", 300, "warmup requests per worker before listening")
	ctxSwitch := flag.Int("ctxswitch", 64, "context switch every n requests per worker (0 disables)")
	flag.Parse()

	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "phpserve: -workers must be positive, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := configByName(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	pool, err := workload.NewPool(*workers, cfg, *app, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("phpserve: warming %d %s worker(s) (%d requests each, %s core)\n",
		*workers, *app, *warmup, *config)
	warmPool(pool, *warmup, *ctxSwitch)

	srv := newServer(pool, *app, *config, *ctxSwitch)
	fmt.Printf("phpserve: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
