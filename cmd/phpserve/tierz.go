package main

// The /tierz endpoint and phpserve_tier_* metric series: the serving
// view of the bytecode execution tier for scripted workloads. The
// snapshot is merged across every pool worker (each worker's persistent
// interpreter carries its own inline caches and promotion state, like a
// PHP-FPM process's JIT), so counters here are fleet totals and a
// function promoted on any worker shows as promoted.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/obs"
	"repro/internal/php"
)

// tierzResponse is the ?format=json shape of /tierz.
type tierzResponse struct {
	App               string    `json:"app"`
	Config            string    `json:"config"`
	Tier              string    `json:"tier"`
	Enabled           bool      `json:"enabled"`
	Requests          int64     `json:"requests"`
	Promotions        int64     `json:"promotions"`
	Demotions         int64     `json:"demotions"`
	BytecodeCalls     int64     `json:"bytecode_calls"`
	InterpCalls       int64     `json:"interp_calls"`
	ICSites           int       `json:"ic_sites"`
	ICHits            int64     `json:"ic_hits"`
	ICMisses          int64     `json:"ic_misses"`
	MegamorphicSites  int64     `json:"megamorphic_sites"`
	TypeStableHits    int64     `json:"type_stable_hits"`
	TypeMisses        int64     `json:"type_misses"`
	PromotedFunctions int       `json:"promoted_functions"`
	Functions         []tierzFn `json:"functions"`
}

type tierzFn struct {
	Name       string `json:"name"`
	Tier       string `json:"tier"`
	Calls      int64  `json:"calls"`
	Promotions int64  `json:"promotions"`
	Demotions  int64  `json:"demotions"`
}

// tierSnapshot gathers the merged tier state, or a zero snapshot when
// the tier plane is off (avoids the pool quiescence barrier entirely).
func (s *server) tierSnapshot() php.TierSnapshot {
	if s.tier == "" {
		return php.TierSnapshot{}
	}
	return s.pool.TierSnapshot()
}

// sortedFns orders per-function rows hottest-first for stable display.
func sortedFns(snap php.TierSnapshot) []php.TierFnStat {
	fns := append([]php.TierFnStat(nil), snap.Fns...)
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].Calls != fns[j].Calls {
			return fns[i].Calls > fns[j].Calls
		}
		return fns[i].Name < fns[j].Name
	})
	return fns
}

func (s *server) handleTierz(w http.ResponseWriter, r *http.Request) {
	snap := s.tierSnapshot()

	switch format := r.URL.Query().Get("format"); format {
	case "", "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !snap.Enabled {
			fmt.Fprintf(w, "tiering off: %s (%s) — start with -tier interp|auto|bytecode on a scripted workload\n", s.app, s.config)
			return
		}
		fmt.Fprintf(w, "script tier: %s (%s), mode %s\n", s.app, s.config, snap.Mode)
		fmt.Fprintf(w, "requests %d   bytecode calls %d   interp calls %d\n",
			snap.Requests, snap.BytecodeCalls, snap.InterpCalls)
		fmt.Fprintf(w, "promotions %d   demotions %d   promoted functions %d\n",
			snap.Promotions, snap.Demotions, snap.PromotedFunctions)
		fmt.Fprintf(w, "inline caches: %d sites   hits %d   misses %d   megamorphic %d\n",
			snap.ICSites, snap.ICHits, snap.ICMisses, snap.MegamorphicSites)
		fmt.Fprintf(w, "type feedback: stable %d   misses %d\n\n", snap.TypeStableHits, snap.TypeMisses)
		fmt.Fprintf(w, "%-24s %-10s %12s %6s %6s\n", "function", "tier", "calls", "promo", "demo")
		for _, f := range sortedFns(snap) {
			fmt.Fprintf(w, "%-24s %-10s %12d %6d %6d\n", f.Name, f.Tier, f.Calls, f.Promotions, f.Demotions)
		}
	case "json":
		resp := tierzResponse{
			App:               s.app,
			Config:            s.config,
			Tier:              s.tier,
			Enabled:           snap.Enabled,
			Requests:          snap.Requests,
			Promotions:        snap.Promotions,
			Demotions:         snap.Demotions,
			BytecodeCalls:     snap.BytecodeCalls,
			InterpCalls:       snap.InterpCalls,
			ICSites:           snap.ICSites,
			ICHits:            snap.ICHits,
			ICMisses:          snap.ICMisses,
			MegamorphicSites:  snap.MegamorphicSites,
			TypeStableHits:    snap.TypeStableHits,
			TypeMisses:        snap.TypeMisses,
			PromotedFunctions: snap.PromotedFunctions,
			Functions:         make([]tierzFn, 0, len(snap.Fns)),
		}
		if snap.Enabled {
			resp.Tier = snap.Mode
		}
		for _, f := range sortedFns(snap) {
			resp.Functions = append(resp.Functions, tierzFn{
				Name: f.Name, Tier: f.Tier, Calls: f.Calls,
				Promotions: f.Promotions, Demotions: f.Demotions,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	default:
		http.Error(w, "unknown format "+format+" (want table or json)", http.StatusBadRequest)
	}
}

// tierMetrics appends the phpserve_tier_* series to a /metrics scrape.
// Emitted only when the tier plane is configured, so untiered servers
// pay no extra pool drain per scrape and expose no dead series.
func (s *server) tierMetrics(e *obs.Encoder, base []obs.Label) {
	if s.tier == "" {
		return
	}
	snap := s.tierSnapshot()
	labels := append(append([]obs.Label(nil), base...), obs.Label{Name: "tier", Value: snap.Mode})
	e.Counter("phpserve_tier_requests_total",
		"Requests seen by the tier controller across all workers.",
		obs.Sample{Labels: labels, Value: float64(snap.Requests)})
	e.Counter("phpserve_tier_promotions_total",
		"Function promotions to the bytecode tier across all workers.",
		obs.Sample{Labels: labels, Value: float64(snap.Promotions)})
	e.Counter("phpserve_tier_demotions_total",
		"Function demotions back to the tree-walking interpreter.",
		obs.Sample{Labels: labels, Value: float64(snap.Demotions)})
	e.Counter("phpserve_tier_bytecode_calls_total",
		"Function calls executed in the bytecode tier.",
		obs.Sample{Labels: labels, Value: float64(snap.BytecodeCalls)})
	e.Counter("phpserve_tier_interp_calls_total",
		"Function calls executed by the tree-walking interpreter.",
		obs.Sample{Labels: labels, Value: float64(snap.InterpCalls)})
	e.Gauge("phpserve_tier_ic_sites",
		"Polymorphic inline-cache sites materialized in compiled code.",
		obs.Sample{Labels: labels, Value: float64(snap.ICSites)})
	e.Counter("phpserve_tier_ic_hits_total",
		"Inline-cache hits at static hash-access sites.",
		obs.Sample{Labels: labels, Value: float64(snap.ICHits)})
	e.Counter("phpserve_tier_ic_misses_total",
		"Inline-cache misses (lookup fell back to the full path).",
		obs.Sample{Labels: labels, Value: float64(snap.ICMisses)})
	e.Gauge("phpserve_tier_megamorphic_sites",
		"Inline-cache sites gone megamorphic (cap exceeded, caching off).",
		obs.Sample{Labels: labels, Value: float64(snap.MegamorphicSites)})
	e.Counter("phpserve_tier_type_stable_hits_total",
		"Type-check sites whose observed type matched the cached one.",
		obs.Sample{Labels: labels, Value: float64(snap.TypeStableHits)})
	e.Counter("phpserve_tier_type_misses_total",
		"Type-check sites observing a new type (feedback updated).",
		obs.Sample{Labels: labels, Value: float64(snap.TypeMisses)})
	e.Gauge("phpserve_tier_promoted_functions",
		"Functions currently resident in the bytecode tier (any worker).",
		obs.Sample{Labels: labels, Value: float64(snap.PromotedFunctions)})
}
