package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// startClusterBackend builds a real phpserve server (pool + scheduler +
// cache + collector, sampling every request) and serves it over HTTP —
// the full production handler, not a stub.
func startClusterBackend(t *testing.T, backendID int, logW io.Writer) *httptest.Server {
	t.Helper()
	cfg, err := configByName("accelerated")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TraceCapacity = -1
	pool, err := workload.NewPoolSharedSeed(1, cfg, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(1, logW, nil)
	col.SetTreeRing(obs.NewTreeRing(64))
	sched := serve.NewScheduler(pool, serve.Config{QueueDepth: 16})
	srv := newServer(sched, col, "wordpress", "accelerated", 0)
	srv.backendID = backendID
	col.SetBackend(srv.backendLabel())
	srv.cache = cache.New(cache.Config{Capacity: 64, Shards: 4})
	srv.pageKeys, err = workload.NewZipfKeys(1, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

// backendStatsRatio reads one backend's /stats cache block and returns
// (hits, lookups).
func backendStatsRatio(t *testing.T, addr string) (float64, float64) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Cache *struct {
			Hits      float64 `json:"hits"`
			Misses    float64 `json:"misses"`
			Coalesced float64 `json:"coalesced"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("backend /stats has no cache block")
	}
	return st.Cache.Hits, st.Cache.Hits + st.Cache.Misses + st.Cache.Coalesced
}

// logHasRequestID scans a JSON-lines access log for a line carrying the
// given request_id.
func logHasRequestID(t *testing.T, buf *bytes.Buffer, rid string) bool {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var line struct {
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad access-log line %q: %v", sc.Text(), err)
		}
		if line.RequestID == rid {
			return true
		}
	}
	return false
}

// TestClusterEndToEndObservability is the acceptance-criteria run in
// miniature: two real phpserve backends behind a real affinity router,
// every request sampled. One X-Request-Id must be visible in the client
// response, the router access log, the serving backend's access log,
// and the stitched tree in the router's /tracez ring; the fleet
// scrape's aggregate hit ratio must equal the ratio recomputed from the
// backends' own /stats counters.
func TestClusterEndToEndObservability(t *testing.T) {
	var b0Log, b1Log, routerLog bytes.Buffer
	ts0 := startClusterBackend(t, 0, &b0Log)
	ts1 := startClusterBackend(t, 1, &b1Log)

	routerRing := obs.NewTreeRing(64)
	r := serve.NewRouter(serve.RouterConfig{
		Client:     &http.Client{Timeout: 10 * time.Second},
		SampleRate: 1,
		TreeRing:   routerRing,
		AccessLog:  obs.NewAccessLog(&routerLog),
		Events:     obs.NewEventRing(64),
	})
	r.AddBackend("0", strings.TrimPrefix(ts0.URL, "http://"))
	r.AddBackend("1", strings.TrimPrefix(ts1.URL, "http://"))

	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.Proxy(w, req, "page:"+req.URL.Query().Get("page"))
	}))
	defer front.Close()

	// Two rounds over 8 pages: round one fills both backends' caches,
	// round two hits them, so the aggregate ratio is meaningfully mixed.
	const rounds, pages = 2, 8
	var lastRID string
	for round := 0; round < rounds; round++ {
		for page := 0; page < pages; page++ {
			resp, err := http.Get(fmt.Sprintf("%s/?page=%d", front.URL, page))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("page %d round %d: status %d", page, round, resp.StatusCode)
			}
			rid := resp.Header.Get("X-Request-Id")
			if rid == "" {
				t.Fatal("response missing X-Request-Id")
			}
			if resp.Header.Get("X-Trace-Sampled") != "" {
				t.Fatal("internal X-Trace-Sampled header leaked to the client")
			}
			lastRID = rid
		}
	}

	// Stitching happens after the client is answered; wait for every
	// sampled request's backend tree to be fetched and grafted.
	const total = rounds * pages
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := r.Stats()
		if rs.Stitched+rs.StitchErrors >= total {
			if rs.StitchErrors != 0 {
				t.Fatalf("stitch errors: %d of %d", rs.StitchErrors, total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched %d + errors %d, want %d", rs.Stitched, rs.StitchErrors, total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The last request's ID names a stitched tree in the router ring:
	// its proxy span carries the backend's grafted subtree.
	var tree *obs.Tree
	for _, tr := range routerRing.Last(0) {
		if tr != nil && tr.ID == lastRID {
			tree = tr
		}
	}
	if tree == nil {
		t.Fatalf("no router tree with id %s", lastRID)
	}
	stitched := false
	tree.Root.Walk(func(sp *obs.TreeSpan, _ int) {
		if strings.HasPrefix(sp.Name, "proxy:") || strings.HasPrefix(sp.Name, "retry:") {
			if len(sp.Children) > 0 {
				stitched = true
			}
		}
	})
	if !stitched {
		t.Fatalf("router tree %s has no backend subtree under its proxy span", lastRID)
	}

	// The same ID appears in the router's access log and in exactly one
	// backend's.
	if !logHasRequestID(t, &routerLog, lastRID) {
		t.Fatalf("router access log has no line for %s", lastRID)
	}
	if !logHasRequestID(t, &b0Log, lastRID) && !logHasRequestID(t, &b1Log, lastRID) {
		t.Fatalf("no backend access log line for %s", lastRID)
	}

	// Fleet-scrape aggregate hit ratio == ratio recomputed from the
	// backends' own /stats counters (merged counters, not mean of
	// ratios).
	fs := r.ScrapeFleet(context.Background())
	if fs.Scraped() != 2 {
		for _, b := range fs.Backends {
			t.Logf("backend %s: err=%v", b.ID, b.Err)
		}
		t.Fatalf("scraped %d backends, want 2", fs.Scraped())
	}
	if got := fs.Requests(); got != total {
		t.Fatalf("fleet requests = %g, want %d", got, total)
	}
	h0, l0 := backendStatsRatio(t, strings.TrimPrefix(ts0.URL, "http://"))
	h1, l1 := backendStatsRatio(t, strings.TrimPrefix(ts1.URL, "http://"))
	if l0+l1 == 0 {
		t.Fatal("no cache lookups recorded")
	}
	want := (h0 + h1) / (l0 + l1)
	if got := fs.CacheHitRatio(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("fleet hit ratio = %g, want %g from per-backend /stats", got, want)
	}
	if want == 0 {
		t.Fatal("expected cache hits after the second round")
	}
}
