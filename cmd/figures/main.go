// Command figures regenerates every table and figure of the paper's
// evaluation as aligned text tables, using the experiment drivers in
// internal/experiments.
//
// Usage:
//
//	figures [-full] [-only fig14,fig15,...]
//
// With -full the runs use the paper-scale methodology (300 warmup
// requests, 200 measured; 4M-instruction characterizations); the default
// quick mode is sized for a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	full := flag.Bool("full", false, "paper-scale run sizes")
	only := flag.String("only", "", "comma-separated figure list (e.g. fig14,fig15)")
	flag.Parse()

	opt := experiments.Quick()
	uopt := experiments.QuickUarch()
	if *full {
		opt = experiments.Full()
		uopt = experiments.FullUarch()
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[strings.ToLower(f)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if sel("fig1") {
		figure1(opt)
	}
	if sel("fig2a") {
		figure2a(uopt)
	}
	if sel("fig2b") {
		figure2b(uopt)
	}
	if sel("fig2c") {
		figure2c(uopt)
	}
	if sel("mpki") {
		branchMPKI(uopt)
	}
	if sel("fig3") {
		figure3(opt)
	}
	if sel("fig4") {
		figure4(opt)
	}
	if sel("fig5") {
		figure5(opt)
	}
	if sel("fig7") {
		figure7(opt)
	}
	if sel("fig8a") {
		figure8a(opt)
	}
	if sel("fig8bc") {
		figure8bc(opt)
	}
	if sel("fig12") {
		figure12(opt)
	}
	if sel("fig14") {
		figure14(opt)
	}
	if sel("fig15") {
		figure15(opt)
	}
	if sel("keys") {
		tableKeys(opt)
	}
	if sel("uops") {
		tableUops()
	}
	if sel("indirect") {
		tableIndirect(uopt)
	}
	if sel("general") {
		tableGeneralization(opt)
	}
}

func tableGeneralization(opt experiments.Options) {
	header("Extension: generalization to other PHP frameworks (conclusion)")
	fmt.Printf("%-12s %12s %12s %12s\n", "workload", "mitigated", "accelerated", "rel.gain")
	for _, r := range experiments.TableGeneralization(opt) {
		fmt.Printf("%-12s %11.2f%% %11.2f%% %11.2f%%\n",
			r.App, 100*r.MitigatedTime, 100*r.AcceleratedTime, 100*r.RelativeGain)
	}
	fmt.Println("paper conclusion: Laravel, Symfony, Yii, Phalcon \"will all gain execution efficiency\"")
}

func tableIndirect(opt experiments.UarchOptions) {
	header("Extension: indirect target prediction on VM dispatch (cf. section 2)")
	fmt.Printf("%-12s %10s %12s %12s %12s %12s %10s\n",
		"workload", "ind/KI", "BTB miss", "ITTAGE miss", "bubblesPKI", "+ITTAGE", "RAS miss")
	for _, r := range experiments.TableIndirectPredictor(opt) {
		fmt.Printf("%-12s %10.2f %11.1f%% %11.1f%% %12.2f %12.2f %9.2f%%\n",
			r.Workload, r.IndirectPerKI, 100*r.BTBMissRate, 100*r.ITTAGEMissRate,
			r.BubblePKIBefore, r.BubblePKIAfter, 100*r.RASMissRate)
	}
	fmt.Println("extension: the front-end remedy section 2 points to for data-dependent dispatch")
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func figure1(opt experiments.Options) {
	header("Figure 1: CPU cycle distribution over hottest leaf functions")
	rows := experiments.Figure1(opt)
	fmt.Printf("%-20s %9s %11s %8s\n", "workload", "hottest%", "funcs@65%", "#funcs")
	for _, r := range rows {
		fmt.Printf("%-20s %8.2f%% %11d %8d\n", r.App, 100*r.HottestFrac, r.FuncsFor65, r.NumFunctions)
	}
	fmt.Printf("\ncumulative cycle %% over hottest-N functions:\n%-20s", "workload")
	for _, x := range rows[0].Xs {
		fmt.Printf("%7d", x)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-20s", r.App)
		for _, v := range r.CDF {
			fmt.Printf("%6.1f%%", 100*v)
		}
		fmt.Println()
	}
	fmt.Println("paper: PHP apps' hottest fn ~10-12%, ~100 fns for ~65%; SPECWeb ~90% in a few fns")
}

func figure2a(opt experiments.UarchOptions) {
	header("Figure 2a: execution time vs BTB size x I-cache size (WordPress)")
	rows := experiments.Figure2a(opt)
	fmt.Printf("%10s %10s %10s %11s\n", "BTB", "I$", "norm.time", "BTB hit")
	for _, r := range rows {
		fmt.Printf("%9dK %9dK %10.4f %10.2f%%\n", r.BTBEntries/1024, r.L1ISize/1024, r.NormTime, 100*r.BTBHitRate)
	}
	fmt.Println("paper: modest gains even at 64K entries (95.85% hit rate)")
}

func figure2b(opt experiments.UarchOptions) {
	header("Figure 2b: cache MPKI")
	rows := experiments.Figure2b(opt)
	fmt.Printf("%-12s %8s %8s %8s\n", "workload", "L1I", "L1D", "L2")
	for _, r := range rows {
		fmt.Printf("%-12s %8.2f %8.2f %8.2f\n", r.Workload, r.L1IMPKI, r.L1DMPKI, r.L2MPKI)
	}
	fmt.Println("paper: L1 behaviour SPEC-like; L2 filtered by L1")
}

func figure2c(opt experiments.UarchOptions) {
	header("Figure 2c: execution time by core configuration (WordPress)")
	rows := experiments.Figure2c(opt)
	for _, r := range rows {
		fmt.Printf("%-18s %8.4f\n", r.Core, r.NormTime)
	}
	fmt.Println("paper: OoO >> in-order; <3% gain from 4-wide to 8-wide")
}

func branchMPKI(opt experiments.UarchOptions) {
	header("Section 2: branch MPKI (32KB TAGE)")
	fmt.Printf("%-12s %10s %10s\n", "workload", "model", "paper")
	for _, r := range experiments.TableBranchMPKI(opt) {
		fmt.Printf("%-12s %10.2f %10.2f\n", r.Workload, r.MPKI, r.PaperMPKI)
	}
}

func figure3(opt experiments.Options) {
	header("Figure 3: WordPress leaf functions before/after mitigations")
	fmt.Printf("%-34s %-10s %9s %9s\n", "function", "category", "before%", "after%")
	for _, r := range experiments.Figure3(opt)[:25] {
		fmt.Printf("%-34s %-10s %9.2f %9.2f\n", r.Name, r.Category, r.BeforePct, r.AfterPct)
	}
}

func figure4(opt experiments.Options) {
	header("Figure 4: categorization of WordPress leaf functions (post-mitigation)")
	fmt.Printf("%-34s %-10s %8s\n", "function", "category", "share%")
	for _, r := range experiments.Figure4(opt)[:25] {
		fmt.Printf("%-34s %-10s %8.2f\n", r.Name, r.Category, r.Pct)
	}
}

func figure5(opt experiments.Options) {
	header("Figure 5: execution time breakdown after mitigating abstraction overheads")
	cats := []sim.Category{sim.CatHash, sim.CatHeap, sim.CatString, sim.CatRegex, sim.CatOther, sim.CatKernel}
	fmt.Printf("%-12s", "workload")
	for _, c := range cats {
		fmt.Printf("%11s", c.String())
	}
	fmt.Println()
	for _, r := range experiments.Figure5(opt) {
		fmt.Printf("%-12s", r.App)
		for _, c := range cats {
			fmt.Printf("%10.1f%%", 100*r.Shares[c])
		}
		fmt.Println()
	}
	fmt.Println("paper: four categories are a substantial minority; Drupal has the least string/regex")
}

func figure7(opt experiments.Options) {
	header("Figure 7: hardware hash table GET hit rate vs entries")
	fmt.Printf("%8s %10s %12s %12s\n", "entries", "hit rate", "GETs", "SETs")
	for _, r := range experiments.Figure7(opt) {
		fmt.Printf("%8d %9.2f%% %12d %12d\n", r.Entries, 100*r.GetHitRate, r.Gets, r.Sets)
	}
	fmt.Println("paper: ~80% at 256 entries; SETs never miss")
}

func figure8a(opt experiments.Options) {
	header("Figure 8a: cumulative memory usage by slab size")
	rows := experiments.Figure8a(opt)
	fmt.Printf("%-12s", "size<=")
	for _, s := range rows[0].ClassSizes {
		fmt.Printf("%7d", s)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s", r.App)
		for _, v := range r.Cumulative {
			fmt.Printf("%6.1f%%", 100*v)
		}
		fmt.Println()
	}
	fmt.Println("paper: a majority of allocations are at most 128 bytes")
}

func figure8bc(opt experiments.Options) {
	header("Figure 8b/c: live memory per small slab band over time (sampled)")
	for _, s := range experiments.Figure8bc(opt) {
		fmt.Printf("%s (last 8 samples, bytes):\n", s.App)
		fmt.Printf("%10s %10s %10s %10s %10s %10s\n", "op", "0-32", "32-64", "64-96", "96-128", ">128")
		start := len(s.Ops) - 8
		if start < 0 {
			start = 0
		}
		for i := start; i < len(s.Ops); i++ {
			fmt.Printf("%10d %10d %10d %10d %10d %10d\n", s.Ops[i],
				s.Bands[0][i], s.Bands[1][i], s.Bands[2][i], s.Bands[3][i], s.Bands[4][i])
		}
	}
	fmt.Println("paper: flat usage for the four smallest slabs = strong memory reuse")
}

func figure12(opt experiments.Options) {
	header("Figure 12: content skipped by sifting and reuse")
	fmt.Printf("%-12s %10s %10s %10s\n", "workload", "sift", "reuse", "total")
	for _, r := range experiments.Figure12(opt) {
		fmt.Printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", r.App, 100*r.SiftFraction, 100*r.ReuseFraction, 100*r.TotalFraction)
	}
}

func figure14(opt experiments.Options) {
	header("Figure 14: execution time normalized to unmodified HHVM")
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "workload", "mitigated", "accelerated", "rel.gain", "energy-save")
	var mitS, accS, engS float64
	rows := experiments.Figure14(opt)
	for _, r := range rows {
		fmt.Printf("%-12s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			r.App, 100*r.MitigatedTime, 100*r.AcceleratedTime, 100*r.RelativeGain, 100*r.EnergySaving)
		mitS += r.MitigatedTime
		accS += r.AcceleratedTime
		engS += r.EnergySaving
	}
	n := float64(len(rows))
	fmt.Printf("%-12s %11.2f%% %11.2f%% %12s %11.2f%%\n", "average", 100*mitS/n, 100*accS/n, "", 100*engS/n)
	fmt.Println("paper: 88.15% mitigated, 70.22% accelerated (avg); energy -26.06/-16.75/-19.81% (avg -21.01%)")
}

func figure15(opt experiments.Options) {
	header("Figure 15: per-accelerator benefit breakdown (fraction of mitigated time)")
	kinds := sim.AccelKinds()
	fmt.Printf("%-12s", "workload")
	for _, k := range kinds {
		fmt.Printf("%20s", k)
	}
	fmt.Printf("%10s\n", "total")
	avg := map[sim.AccelKind]float64{}
	rows := experiments.Figure15(opt)
	for _, r := range rows {
		fmt.Printf("%-12s", r.App)
		for _, k := range kinds {
			fmt.Printf("%19.2f%%", 100*r.Benefit[k])
			avg[k] += r.Benefit[k] / float64(len(rows))
		}
		fmt.Printf("%9.2f%%\n", 100*r.Total)
	}
	fmt.Printf("%-12s", "average")
	keys := make([]int, 0)
	for _, k := range kinds {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range kinds {
		fmt.Printf("%19.2f%%", 100*avg[k])
	}
	fmt.Println()
	fmt.Println("paper averages: hash 6.45%, heap 7.29%, string 4.51%, regexp 1.96%")
}

func tableKeys(opt experiments.Options) {
	header("Section 4.2: hash key statistics")
	fmt.Printf("%-12s %12s %12s %12s\n", "workload", "keys<=24B", "SET ratio", "dynamic")
	for _, r := range experiments.TableKeyStats(opt) {
		fmt.Printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", r.App, 100*r.ShortKeyFrac, 100*r.SetRatio, 100*r.DynamicFrac)
	}
	fmt.Println("paper: ~95% of keys <=24B; SETs are 15-25% of requests")
}

func tableUops() {
	header("Section 5.2: software-path micro-op costs")
	fmt.Printf("%-28s %10s %10s\n", "operation", "model", "paper")
	for _, r := range experiments.TableMicroOps() {
		fmt.Printf("%-28s %10.2f %10.2f\n", r.Name, r.ModelVal, r.PaperVal)
	}
}

func init() {
	// Keep usage output tidy when flag parsing fails.
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: figures [-full] [-only fig14,fig15,...]\n")
		flag.PrintDefaults()
	}
}
