// Command tracedump decodes an operation trace written by phpsim -trace
// and prints per-kind statistics plus (optionally) the raw event stream.
//
// Usage:
//
//	tracedump [-v] [-head 50] trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "print every event")
	head := flag.Int("head", 0, "print only the first N events (with -v)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-v] [-head N] trace.bin")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}

	counts := map[trace.Kind]int{}
	fnCounts := map[string]int{}
	var keyBytes, shortKeys, hashOps int
	for _, e := range events {
		counts[e.Kind]++
		fnCounts[e.Fn]++
		switch e.Kind {
		case trace.KindHashGet, trace.KindHashSet:
			hashOps++
			keyBytes += int(e.B)
			if e.B <= 24 {
				shortKeys++
			}
		}
	}

	fmt.Printf("%d events\n\nby kind:\n", len(events))
	for k := trace.Kind(0); int(counts[k]) >= 0 && int(k) < 16; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Printf("  %-14s %8d\n", k, counts[k])
	}
	if hashOps > 0 {
		fmt.Printf("\nhash keys: avg %.1f bytes, %.1f%% <= 24 bytes\n",
			float64(keyBytes)/float64(hashOps), 100*float64(shortKeys)/float64(hashOps))
	}

	type fc struct {
		fn string
		n  int
	}
	var fns []fc
	for fn, n := range fnCounts {
		fns = append(fns, fc{fn, n})
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].n != fns[j].n {
			return fns[i].n > fns[j].n
		}
		return fns[i].fn < fns[j].fn
	})
	fmt.Println("\nbusiest functions:")
	for i, e := range fns {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-34s %8d\n", e.fn, e.n)
	}

	if *verbose {
		n := len(events)
		if *head > 0 && *head < n {
			n = *head
		}
		fmt.Println("\nevents:")
		for _, e := range events[:n] {
			fmt.Printf("  %-14s %-28s A=%#x B=%d C=%d\n", e.Kind, e.Fn, e.A, e.B, e.C)
		}
	}
}
