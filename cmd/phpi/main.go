// Command phpi interprets a PHP script on the simulated runtime and
// prints its output, optionally with the simulation cost report — a
// miniature HHVM-with-accelerators in one binary.
//
// Usage:
//
//	phpi [-accel] [-stats] [-tier interp|auto|bytecode] [-requests n] script.php
//	echo '<?php echo strtoupper("hi");' | phpi -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/php"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	accel := flag.Bool("accel", true, "run with the four accelerators")
	stats := flag.Bool("stats", false, "print the simulation cost report after the output")
	topN := flag.Int("profile", 0, "also print the hottest N leaf functions")
	tier := flag.String("tier", "interp", "execution tier: interp, auto (profile-guided promotion), or bytecode")
	requests := flag.Int("requests", 1, "run the script n times (only the last run's output prints; lets -tier auto cross its promotion window)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: phpi [-accel] [-stats] [-tier interp|auto|bytecode] script.php  (use - for stdin)")
		os.Exit(2)
	}

	mode, err := php.ParseTierMode(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phpi:", err)
		os.Exit(2)
	}

	var src []byte
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phpi:", err)
		os.Exit(1)
	}

	cfg := vm.Config{Mitigations: sim.AllMitigations(), TraceCapacity: -1}
	if *accel {
		cfg.Features = isa.AllAccelerators()
	}
	rt := vm.New(cfg)

	prog, err := php.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "phpi:", err)
		os.Exit(1)
	}
	in := php.New(rt, prog)
	if mode != php.TierInterp {
		if err := in.EnableTier(nil, mode, php.DefaultTierPolicy()); err != nil {
			fmt.Fprintln(os.Stderr, "phpi:", err)
			os.Exit(1)
		}
	}

	n := *requests
	if n < 1 {
		n = 1
	}
	var out []byte
	for i := 0; i < n; i++ {
		out, err = in.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "phpi:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(out)

	if *stats {
		fmt.Fprintf(os.Stderr, "\n--- simulation ---\n%s", rt.Meter().Report())
		if snap := in.TierSnapshot(); snap.Enabled {
			fmt.Fprintf(os.Stderr, "--- tier (%s) ---\nrequests %d  bytecode calls %d  interp calls %d  promotions %d\nic hits %d  ic misses %d  type-stable %d  type misses %d\n",
				snap.Mode, snap.Requests, snap.BytecodeCalls, snap.InterpCalls, snap.Promotions,
				snap.ICHits, snap.ICMisses, snap.TypeStableHits, snap.TypeMisses)
		}
	}
	if *topN > 0 {
		p := profile.FromMeter(rt.Meter())
		fmt.Fprintf(os.Stderr, "\n%s", p.Render(*topN))
	}
}
