// Command phpi interprets a PHP script on the simulated runtime and
// prints its output, optionally with the simulation cost report — a
// miniature HHVM-with-accelerators in one binary.
//
// Usage:
//
//	phpi [-accel] [-stats] script.php
//	echo '<?php echo strtoupper("hi");' | phpi -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/php"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	accel := flag.Bool("accel", true, "run with the four accelerators")
	stats := flag.Bool("stats", false, "print the simulation cost report after the output")
	topN := flag.Int("profile", 0, "also print the hottest N leaf functions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: phpi [-accel] [-stats] script.php  (use - for stdin)")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phpi:", err)
		os.Exit(1)
	}

	cfg := vm.Config{Mitigations: sim.AllMitigations(), TraceCapacity: -1}
	if *accel {
		cfg.Features = isa.AllAccelerators()
	}
	rt := vm.New(cfg)

	out, err := php.RunScript(rt, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "phpi:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)

	if *stats {
		fmt.Fprintf(os.Stderr, "\n--- simulation ---\n%s", rt.Meter().Report())
	}
	if *topN > 0 {
		p := profile.FromMeter(rt.Meter())
		fmt.Fprintf(os.Stderr, "\n%s", p.Render(*topN))
	}
}
