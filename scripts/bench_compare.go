// Command bench_compare is the benchmark-trajectory gate `make
// bench-check` runs: it loads the latest committed BENCH_<n>.json,
// reruns the pinned benchrec matrix fresh at the record's scale and
// seed, diffs the two, and exits nonzero with a side-by-side table when
// any metric moved past its tolerance (throughput −5%, p99 +10%,
// allocs/op +0.5 absolute).
//
// Usage:
//
//	go run ./scripts [-dir .] [-against BENCH_3.json] [-fresh rec.json] [-selftest]
//
// -against pins the committed side to a specific record instead of the
// latest. -fresh diffs a pre-recorded file instead of running the
// matrix (regression triage: compare any two committed records).
// -selftest skips the full-scale matrix and instead proves the gate
// works: a quick-scale run is self-compared (must pass) and then
// doctored past every tolerance (must fail) — the env-gated mode
// `make ci` runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/benchrec"
)

func main() {
	dir := flag.String("dir", ".", "directory holding committed BENCH_<n>.json records")
	against := flag.String("against", "", "committed record to compare against (default: latest BENCH_<n>.json in -dir)")
	freshPath := flag.String("fresh", "", "use this record file as the fresh side instead of running the matrix")
	selftest := flag.Bool("selftest", false, "run the quick-scale gate self-test instead of a full comparison")
	flag.Parse()

	if err := run(*dir, *against, *freshPath, *selftest); err != nil {
		fmt.Fprintln(os.Stderr, "bench-check:", err)
		os.Exit(1)
	}
}

func run(dir, against, freshPath string, selftest bool) error {
	if selftest {
		return runSelftest()
	}

	if against == "" {
		latest, err := benchrec.LatestSeq(dir)
		if err != nil {
			return err
		}
		if latest == 0 {
			return fmt.Errorf("no BENCH_<n>.json records in %s; run `make bench-record` first", dir)
		}
		against = filepath.Join(dir, benchrec.Filename(latest))
	}
	base, err := benchrec.Load(against)
	if err != nil {
		return err
	}

	var fresh benchrec.Record
	if freshPath != "" {
		fresh, err = benchrec.Load(freshPath)
		if err != nil {
			return err
		}
	} else {
		fmt.Printf("comparing against %s (scale %s, seed %d); running fresh matrix...\n", against, base.Scale, base.Seed)
		// 5 trials, metric-wise best: the fresh side estimates the same
		// unloaded-machine statistic the committed record did, so host
		// contention during any single trial cannot fake a regression.
		fresh, err = benchrec.RunMatrix(benchrec.Options{Scale: base.Scale, Seed: base.Seed, Trials: 5})
		if err != nil {
			return err
		}
	}

	if base.CalibOpsPerSec > 0 && fresh.CalibOpsPerSec > 0 {
		fmt.Printf("calibration: committed %.3g spin ops/s, fresh %.3g (host speed ratio %.3f; slowdowns relax the wall-clock gates)\n",
			base.CalibOpsPerSec, fresh.CalibOpsPerSec, fresh.CalibOpsPerSec/base.CalibOpsPerSec)
	}
	regs, err := benchrec.Compare(base, fresh, benchrec.DefaultTolerances())
	if err != nil {
		return err
	}
	fmt.Print(benchrec.RenderTable(base, fresh, regs))
	if len(regs) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond tolerance vs %s", len(regs), against)
	}
	fmt.Println("bench-check: no regressions beyond tolerance")
	return nil
}

// runSelftest proves the gate trips: a quick matrix self-compares clean,
// then a doctored copy must produce exactly the injected regressions.
func runSelftest() error {
	rec, err := benchrec.RunMatrix(benchrec.Options{Scale: "quick"})
	if err != nil {
		return err
	}
	regs, err := benchrec.Compare(rec, rec, benchrec.DefaultTolerances())
	if err != nil {
		return err
	}
	if len(regs) != 0 {
		return fmt.Errorf("self-comparison reported regressions: %v", regs)
	}

	doctored := rec
	doctored.Scenarios = append([]benchrec.Scenario(nil), rec.Scenarios...)
	doctored.Scenarios[0].ReqPerSec *= 0.5
	doctored.Scenarios[1].P99US *= 2
	doctored.Scenarios[2].AllocsPerOp++
	// Between the serve slack (0.1) and the direct slack (0.5): must
	// trip the tighter gate on a scheduler-driven scenario.
	doctored.Scenarios[3].AllocsPerOp += 0.2
	regs, err = benchrec.Compare(rec, doctored, benchrec.DefaultTolerances())
	if err != nil {
		return err
	}
	if len(regs) != 4 {
		fmt.Print(benchrec.RenderTable(rec, doctored, regs))
		return fmt.Errorf("injected 4 regressions, gate caught %d", len(regs))
	}
	fmt.Println("bench-check selftest: clean pass on identical records, all 4 injected regressions caught")
	return nil
}
