#!/bin/sh
# docs_check.sh PKGDIR... — fail if an exported top-level identifier in
# any of the given package directories has no doc comment. Exported
# means a func/type/const/var declaration at column 0 whose name starts
# with an upper-case letter; documented means the preceding line is a
# comment (the line directly above, per godoc convention). Grouped
# `const (`/`var (` blocks are covered by the block's own doc comment
# and are not inspected per name.
#
# Used by `make docs-check`, which runs it over internal/obs so the
# observability package's public surface stays documented.
set -u

status=0
for dir in "$@"; do
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		out=$(awk '
			/^func \([^)]*\) [A-Z]/ || /^(func|type|const|var) [A-Z]/ {
				if (!prev_comment)
					printf "%s:%d: undocumented exported declaration: %s\n", FILENAME, FNR, $0
			}
			{ prev_comment = ($0 ~ /^\/\//) }
		' "$f")
		if [ -n "$out" ]; then
			printf '%s\n' "$out"
			status=1
		fi
	done
done
if [ "$status" -ne 0 ]; then
	echo "docs-check: exported identifiers above need doc comments" >&2
fi
exit $status
