#!/bin/sh
# docs_check.sh PKGDIR... — fail if an exported top-level identifier in
# any of the given package directories has no doc comment. Exported
# means a func/type/const/var declaration at column 0 whose name starts
# with an upper-case letter; documented means the preceding line is a
# comment (the line directly above, per godoc convention). Grouped
# `const (`/`var (` blocks are covered by the block's own doc comment
# and are not inspected per name.
#
# After the doc-comment pass, the script also checks endpoint coverage:
# every HTTP route phpserve registers (mux.HandleFunc in
# cmd/phpserve/main.go, with /debug/pprof/* collapsed to its index
# entry) must be mentioned in docs/OPERATIONS.md, so a new endpoint
# cannot land without operator documentation. Flag coverage works the
# same way: every CLI flag phpserve defines must appear as -name in
# docs/OPERATIONS.md.
#
# Used by `make docs-check`, which runs it over internal/obs and
# internal/profile so the observability packages' public surface stays
# documented.
set -u

status=0
for dir in "$@"; do
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		out=$(awk '
			/^func \([^)]*\) [A-Z]/ || /^(func|type|const|var) [A-Z]/ {
				if (!prev_comment)
					printf "%s:%d: undocumented exported declaration: %s\n", FILENAME, FNR, $0
			}
			{ prev_comment = ($0 ~ /^\/\//) }
		' "$f")
		if [ -n "$out" ]; then
			printf '%s\n' "$out"
			status=1
		fi
	done
done
if [ "$status" -ne 0 ]; then
	echo "docs-check: exported identifiers above need doc comments" >&2
fi

# Endpoint coverage: each route phpserve serves must appear in the
# operations guide. pprof sub-routes are collapsed to /debug/pprof/,
# which the guide documents as one surface. The binary spans several
# files (main.go, tierz.go), so every non-test .go file in the package
# is scanned.
server_src=$(ls cmd/phpserve/*.go 2>/dev/null | grep -v '_test\.go$')
opsdoc=docs/OPERATIONS.md
if [ -n "$server_src" ] && [ -f "$opsdoc" ]; then
	routes=$(sed -n 's/.*mux\.HandleFunc("\([^"]*\)".*/\1/p' $server_src |
		sed 's|^/debug/pprof/.*|/debug/pprof/|' | sort -u)
	for route in $routes; do
		if ! grep -qF "$route" "$opsdoc"; then
			echo "docs-check: endpoint $route (from cmd/phpserve) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi

# Flag coverage: every flag phpserve defines (flag.Type("name", ...))
# must be documented as -name in the operations guide.
if [ -n "$server_src" ] && [ -f "$opsdoc" ]; then
	flags=$(sed -n 's/.*flag\.[A-Za-z0-9]*("\([^"]*\)".*/\1/p' $server_src | sort -u)
	for f in $flags; do
		if ! grep -qF -- "-$f" "$opsdoc"; then
			echo "docs-check: flag -$f (from cmd/phpserve) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi

# Router coverage: the phprouter binary gets the same endpoint and flag
# treatment as phpserve — every route it registers and every flag it
# defines must be documented in the operations guide's cluster section.
# The binary spans several files (main.go, clusterobs.go), so every
# non-test .go file in the package is scanned.
router_src=$(ls cmd/phprouter/*.go 2>/dev/null | grep -v '_test\.go$')
if [ -n "$router_src" ] && [ -f "$opsdoc" ]; then
	routes=$(sed -n 's/.*mux\.HandleFunc("\([^"]*\)".*/\1/p' $router_src | sort -u)
	for route in $routes; do
		if ! grep -qF "$route" "$opsdoc"; then
			echo "docs-check: endpoint $route (from cmd/phprouter) is not documented in $opsdoc" >&2
			status=1
		fi
	done
	flags=$(sed -n 's/.*flag\.[A-Za-z0-9]*("\([^"]*\)".*/\1/p' $router_src | sort -u)
	for f in $flags; do
		if ! grep -qF -- "-$f" "$opsdoc"; then
			echo "docs-check: flag -$f (from cmd/phprouter) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi

# Router metrics coverage: every phprouter_* series name the router
# binary emits must be documented, so a new series cannot land without
# an operator-facing definition.
if [ -n "$router_src" ] && [ -f "$opsdoc" ]; then
	series=$(grep -oh '"phprouter_[a-z_]*"' $router_src | tr -d '"' | sort -u)
	for s in $series; do
		if ! grep -qF -- "$s" "$opsdoc"; then
			echo "docs-check: metric series $s (from cmd/phprouter) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi

# Server metrics coverage: the same rule for every phpserve_* series the
# server binary emits, across every non-test file in the package.
if [ -n "$server_src" ] && [ -f "$opsdoc" ]; then
	series=$(grep -oh '"phpserve_[a-z_]*"' $server_src | tr -d '"' | sort -u)
	for s in $series; do
		if ! grep -qF -- "$s" "$opsdoc"; then
			echo "docs-check: metric series $s (from cmd/phpserve) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi

# Benchmark-record schema coverage: every JSON field the benchrec
# record serializes must be documented (as `name`) in the operations
# guide's "Benchmark trajectory" section, so a schema field cannot land
# without a reader-facing definition.
record=internal/benchrec/record.go
if [ -f "$record" ] && [ -f "$opsdoc" ]; then
	fields=$(sed -n 's/.*json:"\([a-z0-9_]*\)".*/\1/p' "$record" | sort -u)
	for field in $fields; do
		if ! grep -qF -- "\`$field\`" "$opsdoc"; then
			echo "docs-check: record field $field (from $record) is not documented in $opsdoc" >&2
			status=1
		fi
	done
fi
exit $status
